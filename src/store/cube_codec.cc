#include "store/cube_codec.h"

#include <cmath>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "mining/item_catalog.h"
#include "mining/transaction.h"

namespace flowcube {

// Friend of FlowGraph: assembles sealed graphs whose column views borrow a
// checkpoint mapping (or any external allocation pinned by `keepalive`).
struct FlowGraphStoreAccess {
  struct GraphSpans {
    std::span<const NodeId> location;
    std::span<const FlowNodeId> parent;
    std::span<const int32_t> depth;
    std::span<const uint32_t> path_count;
    std::span<const uint32_t> terminate_count;
    std::span<const uint32_t> child_begin;
    std::span<const FlowNodeId> child_arena;
    std::span<const uint32_t> duration_begin;
    std::span<const DurationCount> duration_arena;
  };

  static FlowGraph MakeMapped(const GraphSpans& s,
                              std::shared_ptr<const void> keepalive,
                              std::vector<FlowException> exceptions) {
    auto cols = std::make_shared<FlowGraph::Columns>();
    cols->location = s.location;
    cols->parent = s.parent;
    cols->depth = s.depth;
    cols->path_count = s.path_count;
    cols->terminate_count = s.terminate_count;
    cols->child_begin = s.child_begin;
    cols->child_arena = s.child_arena;
    cols->duration_begin = s.duration_begin;
    cols->duration_arena = s.duration_arena;
    cols->keepalive = std::move(keepalive);

    FlowGraph g;
    g.nodes_.clear();
    g.nodes_.shrink_to_fit();
    g.cols_ = std::move(cols);
    g.sealed_ = true;
    g.exceptions_ = std::move(exceptions);
    return g;
  }
};

// Friend of Cuboid: installs pre-sorted cells and a borrowed canonical slot
// table, producing an immutable (mutation-FC_CHECKing) cuboid.
struct CuboidStoreAccess {
  static void Install(Cuboid* cuboid, std::vector<FlowCell> cells,
                      std::span<const uint32_t> slots,
                      std::shared_ptr<const void> keepalive) {
    cuboid->cells_ = std::move(cells);
    cuboid->slots_.Borrow(slots, std::move(keepalive));
  }
};

namespace {

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt v2 checkpoint: ") +
                                 what);
}

// Reads a u64 element count from the meta stream, rejecting counts that
// cannot fit in the remaining bytes (every encoded element consumes at
// least one byte) — same guard as the v1 codec.
Status ReadCount(ByteReader* r, uint64_t* count) {
  FC_RETURN_IF_ERROR(r->U64(count));
  if (*count > r->remaining()) {
    return Corrupt("element count exceeds section size");
  }
  return Status::OK();
}

// Exception lists live in the meta stream (they are small, pointer-rich,
// and irrelevant to the hot columns); the encoding matches v1's exception
// block field-for-field.
void EncodeExceptions(const FlowGraph& g, ByteWriter* w) {
  const std::vector<FlowException>& exceptions = g.exceptions();
  w->U64(exceptions.size());
  for (const FlowException& e : exceptions) {
    w->U8(e.kind == FlowException::Kind::kTransition ? 0 : 1);
    w->U64(e.condition.size());
    for (const StageCondition& c : e.condition) {
      w->U32(c.node);
      w->I64(c.duration);
    }
    w->U32(e.node);
    w->U32(e.transition_target);
    w->I64(e.duration_value);
    w->F64(e.global_probability);
    w->F64(e.conditional_probability);
    w->U32(e.condition_support);
  }
}

Status DecodeExceptions(ByteReader* r, uint64_t num_nodes,
                        std::vector<FlowException>* out) {
  uint64_t num_exceptions = 0;
  FC_RETURN_IF_ERROR(ReadCount(r, &num_exceptions));
  out->clear();
  for (uint64_t i = 0; i < num_exceptions; ++i) {
    FlowException e;
    uint8_t kind = 0;
    FC_RETURN_IF_ERROR(r->U8(&kind));
    if (kind > 1) return Corrupt("unknown exception kind");
    e.kind = kind == 0 ? FlowException::Kind::kTransition
                       : FlowException::Kind::kDuration;
    uint64_t num_conditions = 0;
    FC_RETURN_IF_ERROR(ReadCount(r, &num_conditions));
    for (uint64_t c = 0; c < num_conditions; ++c) {
      StageCondition cond;
      FC_RETURN_IF_ERROR(r->U32(&cond.node));
      FC_RETURN_IF_ERROR(r->I64(&cond.duration));
      if (cond.node >= num_nodes) {
        return Corrupt("exception condition node out of range");
      }
      e.condition.push_back(cond);
    }
    FC_RETURN_IF_ERROR(r->U32(&e.node));
    FC_RETURN_IF_ERROR(r->U32(&e.transition_target));
    FC_RETURN_IF_ERROR(r->I64(&e.duration_value));
    FC_RETURN_IF_ERROR(r->F64(&e.global_probability));
    FC_RETURN_IF_ERROR(r->F64(&e.conditional_probability));
    FC_RETURN_IF_ERROR(r->U32(&e.condition_support));
    if (e.node >= num_nodes) return Corrupt("exception node out of range");
    if (e.transition_target != FlowGraph::kTerminate &&
        e.transition_target >= num_nodes) {
      return Corrupt("exception transition target out of range");
    }
    if (!std::isfinite(e.global_probability) ||
        !std::isfinite(e.conditional_probability)) {
      return Corrupt("exception probability is not finite");
    }
    out->push_back(std::move(e));
  }
  return Status::OK();
}

// Canonical slot table for cells installed in sorted order: linear probing
// from the itemset hash at exactly SlotCapacityFor(n). The writer emits
// this table; the loader rebuilds it and memcmps, which both validates the
// mapped table and proves it canonical in one pass.
std::vector<uint32_t> CanonicalSlots(const std::vector<FlowCell>& cells,
                                     size_t slot_count) {
  std::vector<uint32_t> slots(slot_count, Cuboid::kEmptySlot);
  if (slot_count == 0) return slots;
  const size_t mask = slot_count - 1;
  for (size_t i = 0; i < cells.size(); ++i) {
    size_t slot = ItemsetHash{}(cells[i].dims) & mask;
    while (slots[slot] != Cuboid::kEmptySlot) slot = (slot + 1) & mask;
    slots[slot] = static_cast<uint32_t>(i);
  }
  return slots;
}

template <typename T>
std::span<const T> ColumnAt(std::string_view arena, uint64_t offset,
                            uint64_t count) {
  // Offsets come from the canonical layout, so alignment and bounds are
  // already established.
  return {reinterpret_cast<const T*>(arena.data() + offset),
          static_cast<size_t>(count)};
}

}  // namespace

CuboidLayout ExpectedCuboidLayout(const CuboidCounts& c, uint64_t* cursor) {
  auto place = [cursor](uint64_t count, uint64_t elem_size, uint64_t align) {
    *cursor = FcspAlignUp(*cursor, align);
    const uint64_t offset = *cursor;
    *cursor += count * elem_size;
    return offset;
  };
  CuboidLayout l;
  l.dims_begin = place(c.cells + 1, 4, 4);
  l.dims = place(c.total_dims, 4, 4);
  l.support = place(c.cells, 4, 4);
  l.redundant = place(c.cells, 1, 1);
  l.node_begin = place(c.cells + 1, 4, 4);
  l.location = place(c.total_nodes, 4, 4);
  l.parent = place(c.total_nodes, 4, 4);
  l.depth = place(c.total_nodes, 4, 4);
  l.path_count = place(c.total_nodes, 4, 4);
  l.terminate = place(c.total_nodes, 4, 4);
  l.child_begin = place(c.total_nodes + 1, 4, 4);
  l.children = place(c.total_children, 4, 4);
  l.duration_begin = place(c.total_nodes + 1, 4, 4);
  l.durations =
      place(c.total_durations, sizeof(DurationCount), alignof(DurationCount));
  l.slots = place(c.slot_count, 4, 4);
  return l;
}

void EncodeCubeSections(const FlowCube& cube, ByteWriter* meta,
                        ArenaWriter* arena) {
  const FlowCubePlan& plan = cube.plan();
  meta->U32(static_cast<uint32_t>(plan.item_levels.size() *
                                  plan.path_levels.size()));
  uint64_t cursor = arena->size();
  for (size_t i = 0; i < plan.item_levels.size(); ++i) {
    for (size_t p = 0; p < plan.path_levels.size(); ++p) {
      const Cuboid& cuboid = cube.cuboid(i, p);
      const std::vector<const FlowCell*> cells = cuboid.SortedCells();

      CuboidCounts counts;
      counts.cells = cells.size();
      for (const FlowCell* cell : cells) {
        counts.total_dims += cell->dims.size();
        const FlowGraph& g = cell->graph;
        counts.total_nodes += g.num_nodes();
        for (FlowNodeId n = 0; n < g.num_nodes(); ++n) {
          counts.total_children += g.children(n).size();
          counts.total_durations += g.duration_counts(n).size();
        }
      }
      counts.slot_count =
          cells.empty() ? 0 : Cuboid::SlotCapacityFor(cells.size());
      const CuboidLayout layout = ExpectedCuboidLayout(counts, &cursor);

      meta->U32(static_cast<uint32_t>(i));
      meta->U32(static_cast<uint32_t>(p));
      meta->U64(counts.cells);
      meta->U64(counts.total_dims);
      meta->U64(counts.total_nodes);
      meta->U64(counts.total_children);
      meta->U64(counts.total_durations);
      meta->U64(counts.slot_count);
      meta->U64(layout.dims_begin);
      meta->U64(layout.dims);
      meta->U64(layout.support);
      meta->U64(layout.redundant);
      meta->U64(layout.node_begin);
      meta->U64(layout.location);
      meta->U64(layout.parent);
      meta->U64(layout.depth);
      meta->U64(layout.path_count);
      meta->U64(layout.terminate);
      meta->U64(layout.child_begin);
      meta->U64(layout.children);
      meta->U64(layout.duration_begin);
      meta->U64(layout.durations);
      meta->U64(layout.slots);

      // Flatten the cuboid into contiguous columns. The CSR begin columns
      // record absolute element offsets into their cuboid-wide value
      // columns (see cube_codec.h).
      std::vector<uint32_t> dims_begin, dims, support, node_begin, location,
          parent, path_count, terminate, child_begin, children,
          duration_begin;
      std::vector<int32_t> depth;
      std::vector<uint8_t> redundant;
      std::vector<DurationCount> durations;
      for (const FlowCell* cell : cells) {
        dims_begin.push_back(static_cast<uint32_t>(dims.size()));
        dims.insert(dims.end(), cell->dims.begin(), cell->dims.end());
        support.push_back(cell->support);
        redundant.push_back(cell->redundant ? 1 : 0);
        node_begin.push_back(static_cast<uint32_t>(location.size()));
        const FlowGraph& g = cell->graph;
        for (FlowNodeId n = 0; n < g.num_nodes(); ++n) {
          location.push_back(g.location(n));
          parent.push_back(g.parent(n));
          depth.push_back(static_cast<int32_t>(g.depth(n)));
          path_count.push_back(g.path_count(n));
          terminate.push_back(g.terminate_count(n));
          child_begin.push_back(static_cast<uint32_t>(children.size()));
          const std::span<const FlowNodeId> kids = g.children(n);
          children.insert(children.end(), kids.begin(), kids.end());
          duration_begin.push_back(static_cast<uint32_t>(durations.size()));
          const std::span<const DurationCount> durs = g.duration_counts(n);
          durations.insert(durations.end(), durs.begin(), durs.end());
        }
      }
      dims_begin.push_back(static_cast<uint32_t>(dims.size()));
      node_begin.push_back(static_cast<uint32_t>(location.size()));
      child_begin.push_back(static_cast<uint32_t>(children.size()));
      duration_begin.push_back(static_cast<uint32_t>(durations.size()));

      std::vector<uint32_t> slots(counts.slot_count, Cuboid::kEmptySlot);
      if (!cells.empty()) {
        const size_t mask = slots.size() - 1;
        for (size_t idx = 0; idx < cells.size(); ++idx) {
          size_t slot = ItemsetHash{}(cells[idx]->dims) & mask;
          while (slots[slot] != Cuboid::kEmptySlot) slot = (slot + 1) & mask;
          slots[slot] = static_cast<uint32_t>(idx);
        }
      }

      // Append, asserting each column lands at its canonical offset.
      FC_CHECK(arena->Append(std::span<const uint32_t>(dims_begin)) ==
               layout.dims_begin);
      FC_CHECK(arena->Append(std::span<const uint32_t>(dims)) == layout.dims);
      FC_CHECK(arena->Append(std::span<const uint32_t>(support)) ==
               layout.support);
      FC_CHECK(arena->Append(std::span<const uint8_t>(redundant)) ==
               layout.redundant);
      FC_CHECK(arena->Append(std::span<const uint32_t>(node_begin)) ==
               layout.node_begin);
      FC_CHECK(arena->Append(std::span<const uint32_t>(location)) ==
               layout.location);
      FC_CHECK(arena->Append(std::span<const uint32_t>(parent)) ==
               layout.parent);
      FC_CHECK(arena->Append(std::span<const int32_t>(depth)) == layout.depth);
      FC_CHECK(arena->Append(std::span<const uint32_t>(path_count)) ==
               layout.path_count);
      FC_CHECK(arena->Append(std::span<const uint32_t>(terminate)) ==
               layout.terminate);
      FC_CHECK(arena->Append(std::span<const uint32_t>(child_begin)) ==
               layout.child_begin);
      FC_CHECK(arena->Append(std::span<const uint32_t>(children)) ==
               layout.children);
      FC_CHECK(arena->Append(std::span<const uint32_t>(duration_begin)) ==
               layout.duration_begin);
      FC_CHECK(arena->AppendDurations(durations) == layout.durations);
      FC_CHECK(arena->Append(std::span<const uint32_t>(slots)) ==
               layout.slots);
      FC_CHECK(arena->size() == cursor);

      for (const FlowCell* cell : cells) EncodeExceptions(cell->graph, meta);
    }
  }
}

Result<FlowCube> BuildCubeFromSections(
    std::string_view meta, std::string_view arena,
    std::shared_ptr<const void> keepalive, SchemaPtr schema,
    const FlowCubePlan& plan, const IncrementalMaintainerOptions& options) {
  if (reinterpret_cast<uintptr_t>(arena.data()) % alignof(DurationCount) !=
      0) {
    return Status::Internal("v2 arena buffer is insufficiently aligned");
  }

  FlowCube cube(plan, std::move(schema));
  const ItemCatalog& catalog = cube.catalog();
  const PathSchema& sch = cube.schema();

  ByteReader r(meta);
  uint32_t num_cuboids = 0;
  FC_RETURN_IF_ERROR(r.U32(&num_cuboids));
  if (num_cuboids != cube.num_cuboids()) {
    return Corrupt("cuboid count mismatch");
  }

  uint64_t cursor = 0;
  for (size_t i = 0; i < plan.item_levels.size(); ++i) {
    for (size_t p = 0; p < plan.path_levels.size(); ++p) {
      uint32_t il_index = 0;
      uint32_t pl_index = 0;
      FC_RETURN_IF_ERROR(r.U32(&il_index));
      FC_RETURN_IF_ERROR(r.U32(&pl_index));
      if (il_index != i || pl_index != p) {
        return Corrupt("cuboid out of order");
      }

      CuboidCounts counts;
      FC_RETURN_IF_ERROR(r.U64(&counts.cells));
      FC_RETURN_IF_ERROR(r.U64(&counts.total_dims));
      FC_RETURN_IF_ERROR(r.U64(&counts.total_nodes));
      FC_RETURN_IF_ERROR(r.U64(&counts.total_children));
      FC_RETURN_IF_ERROR(r.U64(&counts.total_durations));
      FC_RETURN_IF_ERROR(r.U64(&counts.slot_count));
      // Every column element occupies at least one arena byte, so any count
      // beyond the arena size is corrupt — and bounding the counts first
      // keeps the layout arithmetic below far from u64 overflow.
      if (counts.cells > arena.size() || counts.total_dims > arena.size() ||
          counts.total_nodes > arena.size() ||
          counts.total_children > arena.size() ||
          counts.total_durations > arena.size() ||
          counts.slot_count > arena.size()) {
        return Corrupt("column count exceeds the arena");
      }
      const uint64_t canonical_slots =
          counts.cells == 0 ? 0 : Cuboid::SlotCapacityFor(counts.cells);
      if (counts.slot_count != canonical_slots) {
        return Corrupt("slot table capacity is not canonical");
      }

      const CuboidLayout expected = ExpectedCuboidLayout(counts, &cursor);
      uint64_t stored[15];
      for (uint64_t& offset : stored) FC_RETURN_IF_ERROR(r.U64(&offset));
      const uint64_t canonical[15] = {
          expected.dims_begin, expected.dims,       expected.support,
          expected.redundant,  expected.node_begin, expected.location,
          expected.parent,     expected.depth,      expected.path_count,
          expected.terminate,  expected.child_begin, expected.children,
          expected.duration_begin, expected.durations, expected.slots};
      for (int k = 0; k < 15; ++k) {
        if (stored[k] != canonical[k]) {
          return Corrupt("column layout disagrees with the canonical packing");
        }
      }
      if (cursor > arena.size()) {
        return Corrupt("cuboid columns exceed the arena");
      }

      const CuboidLayout& l = expected;
      const auto dims_begin =
          ColumnAt<uint32_t>(arena, l.dims_begin, counts.cells + 1);
      const auto dims = ColumnAt<uint32_t>(arena, l.dims, counts.total_dims);
      const auto support =
          ColumnAt<uint32_t>(arena, l.support, counts.cells);
      const auto redundant =
          ColumnAt<uint8_t>(arena, l.redundant, counts.cells);
      const auto node_begin =
          ColumnAt<uint32_t>(arena, l.node_begin, counts.cells + 1);
      const auto location =
          ColumnAt<NodeId>(arena, l.location, counts.total_nodes);
      const auto parent =
          ColumnAt<FlowNodeId>(arena, l.parent, counts.total_nodes);
      const auto depth = ColumnAt<int32_t>(arena, l.depth, counts.total_nodes);
      const auto path_count =
          ColumnAt<uint32_t>(arena, l.path_count, counts.total_nodes);
      const auto terminate =
          ColumnAt<uint32_t>(arena, l.terminate, counts.total_nodes);
      const auto child_begin =
          ColumnAt<uint32_t>(arena, l.child_begin, counts.total_nodes + 1);
      const auto children =
          ColumnAt<FlowNodeId>(arena, l.children, counts.total_children);
      const auto duration_begin =
          ColumnAt<uint32_t>(arena, l.duration_begin, counts.total_nodes + 1);
      const auto durations =
          ColumnAt<DurationCount>(arena, l.durations, counts.total_durations);
      const auto slots = ColumnAt<uint32_t>(arena, l.slots, counts.slot_count);

      // CSR begin columns: zero origin, monotone, exact endpoints.
      if (dims_begin[0] != 0 || dims_begin[counts.cells] != counts.total_dims) {
        return Corrupt("cell coordinate offsets malformed");
      }
      for (uint64_t c = 0; c < counts.cells; ++c) {
        if (dims_begin[c + 1] < dims_begin[c]) {
          return Corrupt("cell coordinate offsets malformed");
        }
      }
      if (node_begin[0] != 0 ||
          node_begin[counts.cells] != counts.total_nodes) {
        return Corrupt("node offsets malformed");
      }
      for (uint64_t c = 0; c < counts.cells; ++c) {
        // Strict: every flowgraph has at least its root node.
        if (node_begin[c + 1] <= node_begin[c]) {
          return Corrupt("node offsets malformed");
        }
      }
      if (child_begin[0] != 0 ||
          child_begin[counts.total_nodes] != counts.total_children) {
        return Corrupt("flowgraph child offsets malformed");
      }
      if (duration_begin[0] != 0 ||
          duration_begin[counts.total_nodes] != counts.total_durations) {
        return Corrupt("flowgraph duration offsets malformed");
      }
      for (uint64_t n = 0; n < counts.total_nodes; ++n) {
        if (child_begin[n + 1] < child_begin[n]) {
          return Corrupt("flowgraph child offsets malformed");
        }
        if (duration_begin[n + 1] < duration_begin[n]) {
          return Corrupt("flowgraph duration offsets malformed");
        }
      }
      // Duration records: the 4 pad bytes of every 16-byte record must be
      // zero (they are CRC-covered and canonical form requires zero fill).
      for (uint64_t d = 0; d < counts.total_durations; ++d) {
        uint32_t pad = 0;
        std::memcpy(&pad, arena.data() + l.durations + d * 16 + 12, 4);
        if (pad != 0) return Corrupt("nonzero duration padding");
      }

      std::vector<FlowCell> out_cells;
      out_cells.reserve(counts.cells);
      for (uint64_t c = 0; c < counts.cells; ++c) {
        FlowCell cell;
        cell.dims.assign(dims.begin() + dims_begin[c],
                         dims.begin() + dims_begin[c + 1]);
        for (size_t j = 0; j < cell.dims.size(); ++j) {
          if (!catalog.IsDimItem(cell.dims[j])) {
            return Corrupt("cell dimension item out of range");
          }
          if (j > 0) {
            if (cell.dims[j] <= cell.dims[j - 1]) {
              return Corrupt("cell coordinates out of order");
            }
            if (catalog.DimOf(cell.dims[j]) <= catalog.DimOf(cell.dims[j - 1])) {
              return Corrupt("cell has two items of one dimension");
            }
          }
        }
        if (c > 0 && !(out_cells.back().dims < cell.dims)) {
          return Corrupt("cells out of order");
        }
        cell.support = support[c];
        if (redundant[c] > 1) return Corrupt("redundancy flag out of range");
        cell.redundant = redundant[c] == 1;

        const uint64_t a = node_begin[c];
        const uint64_t num_nodes = node_begin[c + 1] - a;
        if (location[a] != kInvalidNode || parent[a] != FlowGraph::kRoot ||
            depth[a] != 0) {
          return Corrupt("malformed flowgraph root");
        }
        for (uint64_t n = 1; n < num_nodes; ++n) {
          if (location[a + n] >= sch.locations.NodeCount()) {
            return Corrupt("flowgraph node location out of range");
          }
          if (parent[a + n] >= n) {
            return Corrupt("flowgraph parent out of order");
          }
          if (depth[a + n] != depth[a + parent[a + n]] + 1) {
            return Corrupt("flowgraph node depth mismatch");
          }
        }
        for (uint64_t n = 0; n < num_nodes; ++n) {
          for (uint64_t e = child_begin[a + n]; e < child_begin[a + n + 1];
               ++e) {
            // Child ids are graph-local; nodes are created parents-first.
            if (children[e] <= n || children[e] >= num_nodes) {
              return Corrupt("flowgraph child id out of order");
            }
          }
          const uint64_t d0 = duration_begin[a + n];
          const uint64_t d1 = duration_begin[a + n + 1];
          for (uint64_t d = d0 + 1; d < d1; ++d) {
            if (durations[d].duration <= durations[d - 1].duration) {
              return Corrupt("flowgraph duration counts out of order");
            }
          }
        }
        if (path_count[a] != cell.support) {
          return Corrupt("flowgraph path count disagrees with support");
        }
        const bool qualifies = cell.dims.empty()
                                   ? cell.support >= 1
                                   : cell.support >= options.build.min_support;
        if (!qualifies) return Corrupt("cell below the iceberg threshold");

        std::vector<FlowException> exceptions;
        FC_RETURN_IF_ERROR(DecodeExceptions(&r, num_nodes, &exceptions));

        FlowGraphStoreAccess::GraphSpans spans;
        spans.location = location.subspan(a, num_nodes);
        spans.parent = parent.subspan(a, num_nodes);
        spans.depth = depth.subspan(a, num_nodes);
        spans.path_count = path_count.subspan(a, num_nodes);
        spans.terminate_count = terminate.subspan(a, num_nodes);
        spans.child_begin = child_begin.subspan(a, num_nodes + 1);
        spans.child_arena = children;
        spans.duration_begin = duration_begin.subspan(a, num_nodes + 1);
        spans.duration_arena = durations;
        cell.graph = FlowGraphStoreAccess::MakeMapped(spans, keepalive,
                                                      std::move(exceptions));
        out_cells.push_back(std::move(cell));
      }

      const std::vector<uint32_t> canonical_table =
          CanonicalSlots(out_cells, counts.slot_count);
      if (counts.slot_count != 0 &&
          std::memcmp(canonical_table.data(), slots.data(),
                      counts.slot_count * sizeof(uint32_t)) != 0) {
        return Corrupt("slot table is not canonical");
      }

      CuboidStoreAccess::Install(&cube.mutable_cuboid(i, p),
                                 std::move(out_cells), slots, keepalive);
    }
  }
  if (cursor != arena.size()) {
    return Corrupt("arena size disagrees with the column layout");
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes after cube metadata");
  return cube;
}

}  // namespace flowcube
