#ifndef FLOWCUBE_STORE_UPGRADE_H_
#define FLOWCUBE_STORE_UPGRADE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "flowcube/plan.h"
#include "store/format.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {

// Schema-free summary of a checkpoint file — what `fcsp_tool info` prints.
// For v1 the sizes of the meta/arena/resume sections are not applicable and
// stay 0 (v1 has one undifferentiated payload, reported as resume_size).
struct CheckpointFileInfo {
  uint32_t format = 0;  // kFcspFormatV1 / kFcspFormatV2
  uint64_t file_size = 0;
  uint32_t config_fingerprint = 0;
  uint64_t live_records = 0;
  uint64_t meta_size = 0;
  uint64_t arena_size = 0;
  uint64_t resume_size = 0;
};

// Reads framing + checksums of `filename` without needing the writer's
// schema/plan/options: v1 verifies the payload CRC and reads the
// fingerprint and live-record count from the payload prefix; v2 validates
// the full header (canonical layout) plus all three section CRCs. Neither
// path builds a cube, so inspection of a foreign checkpoint works.
Result<CheckpointFileInfo> InspectCheckpointFile(const std::string& filename);

// Rewrites `in` (either format) as `out` in `format` (default v2) by
// restoring the full pipeline and re-encoding it. The config must match —
// the same (schema, plan, options) gate every checkpoint read. An upgraded
// v1 file serves byte-identical query results (the tool test round-trips
// this), and upgrading a file already in `format` is a canonicalizing no-op.
Status UpgradeCheckpointFile(const std::string& in, const std::string& out,
                             SchemaPtr schema, const FlowCubePlan& plan,
                             const IncrementalMaintainerOptions& options,
                             uint32_t format = kFcspFormatV2);

}  // namespace flowcube

#endif  // FLOWCUBE_STORE_UPGRADE_H_
