#ifndef FLOWCUBE_STORE_CUBE_CODEC_H_
#define FLOWCUBE_STORE_CUBE_CODEC_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/status.h"
#include "flowcube/flowcube.h"
#include "io/binary_io.h"
#include "store/arena_writer.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {

// Encoder/decoder for the cube portion of an FCSP v2 file: the meta stream
// (cuboid shapes, column offsets, per-cell exception lists) and the column
// arena (the relocated sealed forms themselves). The checkpoint framing —
// header, CRCs, resume section — lives in stream/checkpoint.cc and
// store/mapped_cube.cc; this layer only sees the two section payloads.
//
// Per cuboid, the arena carries 15 columns in a fixed order, each aligned
// to its element type (see ExpectedCuboidLayout). Cells appear in sorted
// coordinate order. The CSR begin columns (dims_begin, node_begin,
// child_begin, duration_begin) hold offsets that are ABSOLUTE within their
// cuboid-wide value columns; a cell's FlowGraph views the node columns
// through subspans at its node_begin range while viewing the child/duration
// arenas whole, so the sealed accessor arithmetic is unchanged. Child and
// parent VALUES stay graph-local node ids.

// Element counts of one cuboid's columns.
struct CuboidCounts {
  uint64_t cells = 0;
  uint64_t total_dims = 0;       // sum of per-cell coordinate lengths
  uint64_t total_nodes = 0;      // sum of per-cell flowgraph node counts
  uint64_t total_children = 0;   // sum of child-edge counts
  uint64_t total_durations = 0;  // sum of duration-entry counts
  uint64_t slot_count = 0;       // 0 when empty, else SlotCapacityFor(cells)
};

// Arena-relative byte offsets of one cuboid's columns, in file order.
struct CuboidLayout {
  uint64_t dims_begin = 0;      // u32[cells + 1]
  uint64_t dims = 0;            // u32[total_dims]
  uint64_t support = 0;         // u32[cells]
  uint64_t redundant = 0;       // u8[cells]
  uint64_t node_begin = 0;      // u32[cells + 1]
  uint64_t location = 0;        // u32[total_nodes]
  uint64_t parent = 0;          // u32[total_nodes]
  uint64_t depth = 0;           // i32[total_nodes]
  uint64_t path_count = 0;      // u32[total_nodes]
  uint64_t terminate = 0;       // u32[total_nodes]
  uint64_t child_begin = 0;     // u32[total_nodes + 1]
  uint64_t children = 0;        // u32[total_children]
  uint64_t duration_begin = 0;  // u32[total_nodes + 1]
  uint64_t durations = 0;       // 16-byte records[total_durations]
  uint64_t slots = 0;           // u32[slot_count]
};

// The canonical packing: starting at *cursor, lays the 15 columns out in
// order, aligning each to its element type, and advances *cursor past the
// cuboid. The writer and the loader both call this one function; the loader
// rejects files whose recorded offsets disagree, which is what pins every
// arena byte down to a unique canonical position.
CuboidLayout ExpectedCuboidLayout(const CuboidCounts& counts,
                                  uint64_t* cursor);

// Serializes the cube's cuboid grid into `meta` and `arena`. Cuboids are
// emitted in plan order (item-level major); cells in sorted coordinate
// order; slot tables rebuilt canonically for that order. Works on either
// flowgraph storage form (reads through accessors).
void EncodeCubeSections(const FlowCube& cube, ByteWriter* meta,
                        ArenaWriter* arena);

// Rebuilds a FlowCube whose sealed flowgraph columns and cuboid slot
// tables are read-only views into `arena` — no column data is copied.
// `keepalive` must pin the allocation backing `arena` (a file mapping or a
// heap buffer) and is retained by every graph of the returned cube.
//
// Performs full structural validation before anything is trusted: canonical
// column layout, monotone CSR offsets with exact endpoints, per-graph tree
// invariants, sorted duration entries with zeroed padding, sorted cell
// coordinates, catalog/schema bounds, support and iceberg invariants
// (`options` supplies the threshold), and a memcmp of each slot table
// against its canonical rebuild. Failures are InvalidArgument with a
// distinct "corrupt v2 checkpoint: ..." message. The returned cube is
// immutable — mutating a borrowed cuboid FC_CHECKs.
Result<FlowCube> BuildCubeFromSections(
    std::string_view meta, std::string_view arena,
    std::shared_ptr<const void> keepalive, SchemaPtr schema,
    const FlowCubePlan& plan, const IncrementalMaintainerOptions& options);

}  // namespace flowcube

#endif  // FLOWCUBE_STORE_CUBE_CODEC_H_
