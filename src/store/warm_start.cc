#include "store/warm_start.h"

#include <fstream>
#include <memory>
#include <utility>

#include "common/trace.h"
#include "store/format.h"
#include "stream/checkpoint.h"

namespace flowcube {

Result<WarmStart> WarmStartFromCheckpoint(
    const std::string& filename, SchemaPtr schema, const FlowCubePlan& plan,
    const IncrementalMaintainerOptions& options, SnapshotRegistry* registry,
    const MappedCubeOptions& mopts) {
  FC_CHECK(registry != nullptr);
  TraceSpan span("store.warm_start");

  uint32_t version = 0;
  {
    std::ifstream in(filename, std::ios::binary);
    if (!in.is_open()) {
      return Status::NotFound("cannot open " + filename);
    }
    char prefix[8] = {};
    in.read(prefix, sizeof(prefix));
    if (in.gcount() == sizeof(prefix)) {
      PeekFcspVersion({prefix, sizeof(prefix)}, &version);
    }
    // On a short or foreign file `version` stays 0 and the v1 reader below
    // reports the canonical bad-magic/truncation Status.
  }

  WarmStart ws;
  if (version == kFcspFormatV2) {
    Result<std::shared_ptr<const MappedCube>> mapped =
        MappedCube::Load(filename, std::move(schema), plan, options, mopts);
    if (!mapped.ok()) return mapped.status();
    ws.mapped = std::move(mapped.value());
    ws.format = kFcspFormatV2;
    ws.live_records = ws.mapped->live_records();
    ws.epoch = registry->Publish(ws.mapped->shared_cube(), ws.live_records);
    return ws;
  }

  Result<RestoredPipeline> restored =
      LoadCheckpoint(filename, std::move(schema), plan, options);
  if (!restored.ok()) return restored.status();
  const IncrementalMaintainer& m = restored.value().maintainer;
  ws.format = restored.value().format;
  ws.live_records = m.live_record_count();
  ws.epoch = registry->Publish(
      std::make_shared<const FlowCube>(m.cube().Clone()), ws.live_records);
  return ws;
}

}  // namespace flowcube
