#include "store/mapped_cube.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "io/binary_io.h"
#include "store/cube_codec.h"

namespace flowcube {

namespace {

bool EnvFlagDisabled(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "0") == 0;
}

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("corrupt v2 checkpoint: ") +
                                 what);
}

}  // namespace

MappedCubeOptions MappedCubeOptions::FromEnv() {
  MappedCubeOptions opts;
  opts.verify_crc = !EnvFlagDisabled("FLOWCUBE_MMAP_VERIFY");
  opts.use_mmap = !EnvFlagDisabled("FLOWCUBE_MMAP");
  return opts;
}

// The pinned file image: an mmap'd region or a shared heap buffer. Every
// flowgraph and slot table of the loaded cube holds a shared_ptr to this,
// so the bytes outlive the MappedCube itself if cells escape.
struct MappedCube::Mapping {
  const char* data = nullptr;
  size_t size = 0;
  void* mmap_base = nullptr;  // null for buffered loads
  std::shared_ptr<const std::string> heap;

  std::string_view view() const { return {data, size}; }

  ~Mapping() {
    if (mmap_base != nullptr) {
      ::munmap(mmap_base, size);
      MetricRegistry::Global()
          .gauge("store.bytes_mapped")
          .Add(-static_cast<int64_t>(size));
    }
  }
};

Result<std::shared_ptr<const MappedCube>> MappedCube::Build(
    std::shared_ptr<const Mapping> mapping, SchemaPtr schema,
    const FlowCubePlan& plan, const IncrementalMaintainerOptions& options,
    const MappedCubeOptions& mopts) {
  const std::string_view bytes = mapping->view();

  FcspV2Header header;
  FC_RETURN_IF_ERROR(ValidateV2Header(bytes, &header));
  if (header.config_fingerprint !=
      CheckpointConfigFingerprint(*schema, plan, options)) {
    return Status::InvalidArgument(
        "checkpoint was written with a different schema, plan, or options");
  }

  const std::string_view meta =
      bytes.substr(header.meta_offset, header.meta_size);
  const std::string_view arena =
      bytes.substr(header.arena_offset, header.arena_size);
  if (mopts.verify_crc) {
    if (Crc32(meta) != header.meta_crc) {
      return Corrupt("meta checksum mismatch");
    }
    if (Crc32(arena) != header.arena_crc) {
      return Corrupt("arena checksum mismatch");
    }
    if (header.resume_size != 0 &&
        Crc32(bytes.substr(header.resume_offset, header.resume_size)) !=
            header.resume_crc) {
      return Corrupt("resume checksum mismatch");
    }
  }

  Result<FlowCube> cube = BuildCubeFromSections(
      meta, arena, mapping, std::move(schema), plan, options);
  if (!cube.ok()) return cube.status();

  return std::shared_ptr<const MappedCube>(
      new MappedCube(std::move(mapping), header, std::move(cube.value())));
}

Result<std::shared_ptr<const MappedCube>> MappedCube::Load(
    const std::string& filename, SchemaPtr schema, const FlowCubePlan& plan,
    const IncrementalMaintainerOptions& options,
    const MappedCubeOptions& mopts) {
  TraceSpan span("store.mapped_cube.load");
  MetricRegistry& reg = MetricRegistry::Global();
  static Counter& m_loads = reg.counter("store.mapped_loads");
  static Counter& m_failures = reg.counter("store.load_failures");
  static Gauge& m_bytes = reg.gauge("store.bytes_mapped");

  auto mapping = std::make_shared<Mapping>();
  if (mopts.use_mmap) {
    const int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      m_failures.Increment();
      return Status::NotFound("cannot open " + filename);
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      m_failures.Increment();
      return Status::Internal("cannot stat " + filename);
    }
    mapping->size = static_cast<size_t>(st.st_size);
    if (mapping->size == 0) {
      ::close(fd);
      m_failures.Increment();
      return Corrupt("truncated header");
    }
    void* base =
        ::mmap(nullptr, mapping->size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping survives the descriptor
    if (base == MAP_FAILED) {
      m_failures.Increment();
      return Status::Internal("mmap failed for " + filename + ": " +
                              std::strerror(errno));
    }
    mapping->mmap_base = base;
    mapping->data = static_cast<const char*>(base);
    m_bytes.Add(static_cast<int64_t>(mapping->size));
  } else {
    std::ifstream in(filename, std::ios::binary);
    if (!in.is_open()) {
      m_failures.Increment();
      return Status::NotFound("cannot open " + filename);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
      m_failures.Increment();
      return Status::Internal("checkpoint read failed");
    }
    mapping->heap = std::make_shared<const std::string>(buffer.str());
    mapping->data = mapping->heap->data();
    mapping->size = mapping->heap->size();
  }

  Result<std::shared_ptr<const MappedCube>> loaded =
      Build(std::move(mapping), std::move(schema), plan, options, mopts);
  if (loaded.ok()) {
    m_loads.Increment();
  } else {
    m_failures.Increment();
  }
  return loaded;
}

Result<std::shared_ptr<const MappedCube>> MappedCube::FromBuffer(
    std::shared_ptr<const std::string> buffer, SchemaPtr schema,
    const FlowCubePlan& plan, const IncrementalMaintainerOptions& options,
    const MappedCubeOptions& mopts) {
  TraceSpan span("store.mapped_cube.load");
  MetricRegistry& reg = MetricRegistry::Global();
  static Counter& m_loads = reg.counter("store.mapped_loads");
  static Counter& m_failures = reg.counter("store.load_failures");

  auto mapping = std::make_shared<Mapping>();
  mapping->heap = std::move(buffer);
  mapping->data = mapping->heap->data();
  mapping->size = mapping->heap->size();

  Result<std::shared_ptr<const MappedCube>> loaded =
      Build(std::move(mapping), std::move(schema), plan, options, mopts);
  if (loaded.ok()) {
    m_loads.Increment();
  } else {
    m_failures.Increment();
  }
  return loaded;
}

size_t MappedCube::bytes_mapped() const { return mapping_->size; }

size_t MappedCube::ResidentBytes() const {
  size_t resident = mapping_->size;
  if (mapping_->mmap_base != nullptr) {
    const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    const size_t pages = (mapping_->size + page - 1) / page;
    std::vector<unsigned char> vec(pages);
    if (::mincore(mapping_->mmap_base, mapping_->size, vec.data()) == 0) {
      resident = 0;
      for (unsigned char v : vec) {
        if ((v & 1u) != 0) resident += page;
      }
      if (resident > mapping_->size) resident = mapping_->size;
    }
  }
  MetricRegistry::Global()
      .gauge("store.resident_bytes")
      .Set(static_cast<int64_t>(resident));
  return resident;
}

MappedCube::~MappedCube() = default;

}  // namespace flowcube
