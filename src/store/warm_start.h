#ifndef FLOWCUBE_STORE_WARM_START_H_
#define FLOWCUBE_STORE_WARM_START_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "serve/snapshot_registry.h"
#include "store/mapped_cube.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {

// Result of warm-starting a serving process from a checkpoint file: the
// epoch the cube was published under and how it got there.
struct WarmStart {
  // kFcspFormatV1 or kFcspFormatV2 — which reader produced the snapshot.
  uint32_t format = 0;
  // Live record count the published snapshot reports.
  uint64_t live_records = 0;
  // Epoch SnapshotRegistry::Publish returned.
  uint64_t epoch = 0;
  // Non-null for v2 files: the mapping backing the published cube. Callers
  // can sample ResidentBytes() from it; dropping this handle is fine — the
  // published snapshot pins the mapping on its own.
  std::shared_ptr<const MappedCube> mapped;
};

// Publishes the cube stored in `filename` to `registry` so a QueryServer
// can serve before (or without) any stream ingestion.
//
// v2 files take the zero-copy path: MappedCube::Load validates the image
// and the registry publishes a cube whose columns view the mapping — no
// decode, no per-cell allocation, cold-start time is validation-bound
// (bench/bench_coldstart.cc measures the gap). v1 files fall back to the
// full LoadCheckpoint decode and publish a heap clone. Either way the
// published snapshot answers queries byte-identically to the pipeline that
// wrote the checkpoint.
Result<WarmStart> WarmStartFromCheckpoint(
    const std::string& filename, SchemaPtr schema, const FlowCubePlan& plan,
    const IncrementalMaintainerOptions& options, SnapshotRegistry* registry,
    const MappedCubeOptions& mopts = {});

}  // namespace flowcube

#endif  // FLOWCUBE_STORE_WARM_START_H_
