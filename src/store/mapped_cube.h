#ifndef FLOWCUBE_STORE_MAPPED_CUBE_H_
#define FLOWCUBE_STORE_MAPPED_CUBE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "flowcube/flowcube.h"
#include "store/format.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {

// Load knobs. Defaults are the safe path: verify every section CRC and map
// the file. FromEnv() reads the operational overrides
// (FLOWCUBE_MMAP_VERIFY=0 skips the meta/arena CRC passes — structural
// validation still runs; FLOWCUBE_MMAP=0 reads the file into anonymous
// memory instead of mmap, for filesystems where mapping is undesirable).
struct MappedCubeOptions {
  bool verify_crc = true;
  bool use_mmap = true;

  static MappedCubeOptions FromEnv();
};

// A FlowCube served straight out of an FCSP v2 checkpoint file: the file is
// mapped read-only (or read into one buffer with use_mmap=false) and the
// cube's sealed flowgraph columns and cuboid slot tables are views into
// that mapping — no column data is copied, so load time is dominated by
// validation, not allocation, and untouched cells never cost resident
// memory (the kernel pages them in on first query).
//
// Lifetime: the mapping is pinned by a shared handle that every graph of
// the cube retains, so a FlowCell copied out of the cube — or the aliased
// shared_cube() pointer published to a SnapshotRegistry — stays valid after
// the MappedCube itself is destroyed. The cube is immutable; mutating one
// of its cuboids FC_CHECKs.
//
// Resume data (live records, ingestor state) is NOT restored here — this is
// the serving-side loader. Use DecodeCheckpoint/LoadCheckpoint to resume a
// maintainer pipeline from a v2 file.
class MappedCube : public std::enable_shared_from_this<MappedCube> {
 public:
  // Maps `filename` and validates it: v2 header (canonical layout, header
  // CRC), config fingerprint against (schema, plan, options), section CRCs
  // (when opts.verify_crc), and the full structural walk of
  // BuildCubeFromSections — the structural pass always runs, so a load that
  // skips CRCs still cannot be driven out of bounds by a corrupt file.
  static Result<std::shared_ptr<const MappedCube>> Load(
      const std::string& filename, SchemaPtr schema, const FlowCubePlan& plan,
      const IncrementalMaintainerOptions& options,
      const MappedCubeOptions& mopts = {});

  // Same validation over an in-memory v2 image (shared so the cube can pin
  // it). The buffer must stay unmodified for the life of the cube.
  static Result<std::shared_ptr<const MappedCube>> FromBuffer(
      std::shared_ptr<const std::string> buffer, SchemaPtr schema,
      const FlowCubePlan& plan, const IncrementalMaintainerOptions& options,
      const MappedCubeOptions& mopts = {});

  const FlowCube& cube() const { return cube_; }

  // The cube as a shareable pointer whose ownership keeps this MappedCube
  // (and the mapping) alive — the shape SnapshotRegistry::Publish takes.
  std::shared_ptr<const FlowCube> shared_cube() const {
    return {shared_from_this(), &cube_};
  }

  // Live record count recorded in the header (the resume section's size —
  // what a registry publication reports as the snapshot's record count).
  uint64_t live_records() const { return header_.live_records; }

  uint32_t config_fingerprint() const { return header_.config_fingerprint; }

  // Size of the backing file image (mapped or buffered).
  size_t bytes_mapped() const;

  // Bytes of the mapping currently resident in memory, sampled with
  // mincore(2); equals bytes_mapped() for buffered (non-mmap) loads. Also
  // refreshes the store.resident_bytes gauge.
  size_t ResidentBytes() const;

  ~MappedCube();

 private:
  struct Mapping;

  MappedCube(std::shared_ptr<const Mapping> mapping,
             const FcspV2Header& header, FlowCube cube)
      : mapping_(std::move(mapping)),
        header_(header),
        cube_(std::move(cube)) {}

  static Result<std::shared_ptr<const MappedCube>> Build(
      std::shared_ptr<const Mapping> mapping, SchemaPtr schema,
      const FlowCubePlan& plan, const IncrementalMaintainerOptions& options,
      const MappedCubeOptions& mopts);

  std::shared_ptr<const Mapping> mapping_;
  FcspV2Header header_;
  FlowCube cube_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_STORE_MAPPED_CUBE_H_
