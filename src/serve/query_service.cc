#include "serve/query_service.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "flowcube/dump.h"
#include "flowcube/query.h"

namespace flowcube {
namespace {

struct ServiceMetrics {
  Counter& requests = MetricRegistry::Global().counter("serve.requests");
  Counter& errors = MetricRegistry::Global().counter("serve.request_errors");
  // How many epochs behind the newest publication the pinned snapshot was
  // at execution time (0 = served the freshest cube).
  Gauge& epoch_lag = MetricRegistry::Global().gauge("serve.epoch_lag");

  static ServiceMetrics& Get() {
    static ServiceMetrics* m = new ServiceMetrics();
    return *m;
  }
};

QueryResponse ErrorResponse(const QueryRequest& request, uint64_t epoch,
                            const Status& status) {
  QueryResponse response;
  response.request_id = request.request_id;
  response.epoch = epoch;
  response.code = status.code();
  response.message = status.message();
  return response;
}

void AppendCell(const FlowCube& cube, const CellRef& ref, const char* tag,
                std::string* body) {
  body->append(tag);
  body->append(" ");
  body->append(cube.CellName(ref.cell->dims));
  body->append("\n");
  body->append(DumpFlowCell(*ref.cell));
}

Status CheckShape(const FlowCube& cube, const QueryRequest& request) {
  if (request.pl_index >= cube.plan().path_levels.size()) {
    return Status::InvalidArgument("pl_index out of range");
  }
  if (request.type == RequestType::kDrillDown &&
      request.dim >= cube.schema().num_dimensions()) {
    return Status::InvalidArgument("dimension index out of range");
  }
  return Status::OK();
}

}  // namespace

QueryService::QueryService(const SnapshotRegistry* registry)
    : registry_(registry) {
  FC_CHECK(registry_ != nullptr);
}

QueryResponse QueryService::Execute(const QueryRequest& request) const {
  SnapshotPtr snapshot = registry_->Acquire();
  if (snapshot == nullptr) {
    ServiceMetrics::Get().requests.Increment();
    ServiceMetrics::Get().errors.Increment();
    return ErrorResponse(
        request, 0, Status::FailedPrecondition("no snapshot published yet"));
  }
  ServiceMetrics::Get().epoch_lag.Set(
      static_cast<int64_t>(registry_->current_epoch() - snapshot->epoch));
  return ExecuteOn(*snapshot, request);
}

QueryResponse QueryService::ExecuteOn(const CubeSnapshot& snapshot,
                                      const QueryRequest& request) {
  ServiceMetrics& metrics = ServiceMetrics::Get();
  metrics.requests.Increment();
  const FlowCube& cube = *snapshot.cube;
  const uint64_t epoch = snapshot.epoch;

  if (request.type != RequestType::kStats) {
    Status shape = CheckShape(cube, request);
    if (!shape.ok()) {
      metrics.errors.Increment();
      return ErrorResponse(request, epoch, shape);
    }
  }

  FlowCubeQuery query(&cube);
  QueryResponse response;
  response.request_id = request.request_id;
  response.epoch = epoch;

  switch (request.type) {
    case RequestType::kPointLookup:
    case RequestType::kCellOrAncestor: {
      Result<CellRef> ref =
          request.type == RequestType::kPointLookup
              ? query.Cell(request.values, request.pl_index)
              : query.CellOrAncestor(request.values, request.pl_index);
      if (!ref.ok()) {
        metrics.errors.Increment();
        return ErrorResponse(request, epoch, ref.status());
      }
      response.body = "cell " + cube.CellName(ref->cell->dims) + "\nil " +
                      std::to_string(ref->il_index) + " pl " +
                      std::to_string(ref->pl_index) + "\n" +
                      DumpFlowCell(*ref->cell);
      break;
    }
    case RequestType::kDrillDown: {
      Result<CellRef> parent = query.Cell(request.values, request.pl_index);
      if (!parent.ok()) {
        metrics.errors.Increment();
        return ErrorResponse(request, epoch, parent.status());
      }
      std::vector<CellRef> children = query.DrillDown(*parent, request.dim);
      // Cuboid iteration order is insertion order, which a maintained cube
      // and a rebuilt cube need not share; the body sorts by coordinates so
      // equal cubes produce equal bytes.
      std::sort(children.begin(), children.end(),
                [](const CellRef& a, const CellRef& b) {
                  return a.cell->dims < b.cell->dims;
                });
      response.body = "children " + std::to_string(children.size()) + "\n";
      for (const CellRef& child : children) {
        AppendCell(cube, child, "child", &response.body);
      }
      break;
    }
    case RequestType::kSimilarity: {
      Result<CellRef> a = query.Cell(request.values, request.pl_index);
      if (!a.ok()) {
        metrics.errors.Increment();
        return ErrorResponse(request, epoch, a.status());
      }
      Result<CellRef> b = query.Cell(request.values_b, request.pl_index);
      if (!b.ok()) {
        metrics.errors.Increment();
        return ErrorResponse(request, epoch, b.status());
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "distance %.17g\n",
                    query.Compare(*a, *b));
      response.body = buf;
      break;
    }
    case RequestType::kStats: {
      response.body = "records " + std::to_string(snapshot.records) +
                      "\ncuboids " + std::to_string(cube.num_cuboids()) +
                      "\ncells " + std::to_string(cube.TotalCells()) +
                      "\nredundant " + std::to_string(cube.RedundantCells()) +
                      "\n";
      break;
    }
  }
  return response;
}

}  // namespace flowcube
