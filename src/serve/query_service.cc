#include "serve/query_service.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "flowcube/dump.h"
#include "flowcube/query.h"
#include "io/binary_io.h"
#include "stream/checkpoint.h"

namespace flowcube {
namespace {

struct ServiceMetrics {
  Counter& requests = MetricRegistry::Global().counter("serve.requests");
  Counter& errors = MetricRegistry::Global().counter("serve.request_errors");
  // How many epochs behind the newest publication the pinned snapshot was
  // at execution time (0 = served the freshest cube).
  Gauge& epoch_lag = MetricRegistry::Global().gauge("serve.epoch_lag");
  Counter& cache_hits =
      MetricRegistry::Global().counter("serve.cell_cache_hits");
  Counter& cache_misses =
      MetricRegistry::Global().counter("serve.cell_cache_misses");

  static ServiceMetrics& Get() {
    static ServiceMetrics* m = new ServiceMetrics();
    return *m;
  }
};

QueryResponse ErrorResponse(const QueryRequest& request, uint64_t epoch,
                            const Status& status) {
  QueryResponse response;
  response.request_id = request.request_id;
  response.epoch = epoch;
  response.code = status.code();
  response.message = status.message();
  return response;
}

void AppendCell(const FlowCube& cube, const CellRef& ref, const char* tag,
                std::string* body) {
  body->append(tag);
  body->append(" ");
  body->append(cube.CellName(ref.cell->dims));
  body->append("\n");
  body->append(DumpFlowCell(*ref.cell));
}

Status CheckShape(const FlowCube& cube, const QueryRequest& request) {
  if (request.pl_index >= cube.plan().path_levels.size()) {
    return Status::InvalidArgument("pl_index out of range");
  }
  if ((request.type == RequestType::kDrillDown ||
       request.type == RequestType::kChildrenFetch) &&
      request.dim >= cube.schema().num_dimensions()) {
    return Status::InvalidArgument("dimension index out of range");
  }
  if (request.type == RequestType::kCellFetchBatch ||
      request.type == RequestType::kChildrenFetch) {
    for (const WireCellCoord& c : request.coords) {
      if (c.il_index >= cube.plan().item_levels.size()) {
        return Status::InvalidArgument("il_index out of range");
      }
    }
  }
  if (request.type == RequestType::kChildrenFetch &&
      request.coords.size() != 1) {
    return Status::InvalidArgument(
        "children fetch takes exactly one coordinate");
  }
  return Status::OK();
}

// The unambiguous string key of a point lookup inside one epoch:
// length-prefixing each value name keeps "ab"+"c" distinct from "a"+"bc".
std::string LookupCacheKey(uint64_t epoch, const QueryRequest& request) {
  std::string key = std::to_string(epoch);
  key.push_back('/');
  key += std::to_string(request.pl_index);
  for (const std::string& v : request.values) {
    key.push_back('/');
    key += std::to_string(v.size());
    key.push_back(':');
    key += v;
  }
  return key;
}

}  // namespace

QueryService::QueryService(const SnapshotRegistry* registry,
                           QueryServiceOptions options)
    : registry_(registry), options_(options) {
  FC_CHECK(registry_ != nullptr);
}

bool QueryService::CacheGet(const std::string& key, uint64_t* epoch,
                            std::string* body) const {
  MutexLock lock(cache_mu_);
  const auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return false;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  *epoch = it->second->epoch;
  *body = it->second->body;
  return true;
}

void QueryService::CachePut(const std::string& key, uint64_t epoch,
                            const std::string& body) const {
  MutexLock lock(cache_mu_);
  const auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.push_front(CachedLookup{key, epoch, body});
  cache_index_[key] = cache_lru_.begin();
  while (cache_lru_.size() > options_.cell_cache_capacity) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
}

QueryResponse QueryService::Execute(const QueryRequest& request) const {
  SnapshotPtr snapshot = registry_->Acquire();
  if (snapshot == nullptr) {
    ServiceMetrics::Get().requests.Increment();
    ServiceMetrics::Get().errors.Increment();
    return ErrorResponse(
        request, 0, Status::FailedPrecondition("no snapshot published yet"));
  }
  ServiceMetrics::Get().epoch_lag.Set(
      static_cast<int64_t>(registry_->current_epoch() - snapshot->epoch));
  if (request.type == RequestType::kPointLookup &&
      options_.cell_cache_capacity > 0) {
    const std::string key = LookupCacheKey(snapshot->epoch, request);
    QueryResponse response;
    if (CacheGet(key, &response.epoch, &response.body)) {
      ServiceMetrics::Get().cache_hits.Increment();
      ServiceMetrics::Get().requests.Increment();
      response.request_id = request.request_id;
      return response;
    }
    ServiceMetrics::Get().cache_misses.Increment();
    QueryResponse fresh = ExecuteOn(*snapshot, request);
    if (fresh.code == Status::Code::kOk) {
      CachePut(key, fresh.epoch, fresh.body);
    }
    return fresh;
  }
  return ExecuteOn(*snapshot, request);
}

QueryResponse QueryService::ExecuteOn(const CubeSnapshot& snapshot,
                                      const QueryRequest& request) {
  ServiceMetrics& metrics = ServiceMetrics::Get();
  metrics.requests.Increment();
  const FlowCube& cube = *snapshot.cube;
  const uint64_t epoch = snapshot.epoch;

  if (request.type != RequestType::kStats &&
      request.type != RequestType::kStatsFetch) {
    Status shape = CheckShape(cube, request);
    if (!shape.ok()) {
      metrics.errors.Increment();
      return ErrorResponse(request, epoch, shape);
    }
  }

  FlowCubeQuery query(&cube);
  QueryResponse response;
  response.request_id = request.request_id;
  response.epoch = epoch;

  switch (request.type) {
    case RequestType::kPointLookup:
    case RequestType::kCellOrAncestor: {
      Result<CellRef> ref =
          request.type == RequestType::kPointLookup
              ? query.Cell(request.values, request.pl_index)
              : query.CellOrAncestor(request.values, request.pl_index);
      if (!ref.ok()) {
        metrics.errors.Increment();
        return ErrorResponse(request, epoch, ref.status());
      }
      response.body = "cell " + cube.CellName(ref->cell->dims) + "\nil " +
                      std::to_string(ref->il_index) + " pl " +
                      std::to_string(ref->pl_index) + "\n" +
                      DumpFlowCell(*ref->cell);
      break;
    }
    case RequestType::kDrillDown: {
      Result<CellRef> parent = query.Cell(request.values, request.pl_index);
      if (!parent.ok()) {
        metrics.errors.Increment();
        return ErrorResponse(request, epoch, parent.status());
      }
      std::vector<CellRef> children = query.DrillDown(*parent, request.dim);
      // Cuboid iteration order is insertion order, which a maintained cube
      // and a rebuilt cube need not share; the body sorts by coordinates so
      // equal cubes produce equal bytes.
      std::sort(children.begin(), children.end(),
                [](const CellRef& a, const CellRef& b) {
                  return a.cell->dims < b.cell->dims;
                });
      response.body = "children " + std::to_string(children.size()) + "\n";
      for (const CellRef& child : children) {
        AppendCell(cube, child, "child", &response.body);
      }
      break;
    }
    case RequestType::kSimilarity: {
      Result<CellRef> a = query.Cell(request.values, request.pl_index);
      if (!a.ok()) {
        metrics.errors.Increment();
        return ErrorResponse(request, epoch, a.status());
      }
      Result<CellRef> b = query.Cell(request.values_b, request.pl_index);
      if (!b.ok()) {
        metrics.errors.Increment();
        return ErrorResponse(request, epoch, b.status());
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "distance %.17g\n",
                    query.Compare(*a, *b));
      response.body = buf;
      break;
    }
    case RequestType::kStats: {
      response.body = "records " + std::to_string(snapshot.records) +
                      "\ncuboids " + std::to_string(cube.num_cuboids()) +
                      "\ncells " + std::to_string(cube.TotalCells()) +
                      "\nredundant " + std::to_string(cube.RedundantCells()) +
                      "\n";
      break;
    }
    case RequestType::kCellFetchBatch: {
      ByteWriter w;
      w.U32(static_cast<uint32_t>(request.coords.size()));
      for (const WireCellCoord& c : request.coords) {
        const FlowCell* cell =
            cube.cuboid(c.il_index, request.pl_index).Find(c.key);
        if (cell == nullptr) {
          w.U8(0);
          continue;
        }
        w.U8(1);
        w.U32(cell->support);
        EncodeFlowGraph(cell->graph, &w);
      }
      response.body = w.data();
      break;
    }
    case RequestType::kChildrenFetch: {
      const WireCellCoord& c = request.coords[0];
      ByteWriter w;
      const FlowCell* parent =
          cube.cuboid(c.il_index, request.pl_index).Find(c.key);
      if (parent == nullptr) {
        // No parent paths on this shard means no child paths either.
        w.U8(0);
        w.U32(0);
        response.body = w.data();
        break;
      }
      w.U8(1);
      w.U32(parent->support);
      EncodeFlowGraph(parent->graph, &w);
      std::vector<CellRef> children = query.DrillDown(
          CellRef{parent, c.il_index, request.pl_index}, request.dim);
      std::sort(children.begin(), children.end(),
                [](const CellRef& a, const CellRef& b) {
                  return a.cell->dims < b.cell->dims;
                });
      w.U32(static_cast<uint32_t>(children.size()));
      for (const CellRef& child : children) {
        w.U32(static_cast<uint32_t>(child.cell->dims.size()));
        for (ItemId id : child.cell->dims) w.U32(id);
        w.U32(child.cell->support);
        EncodeFlowGraph(child.cell->graph, &w);
      }
      response.body = w.data();
      break;
    }
    case RequestType::kStatsFetch: {
      ByteWriter w;
      w.U64(snapshot.records);
      const FlowCubePlan& plan = cube.plan();
      w.U32(static_cast<uint32_t>(plan.item_levels.size()));
      w.U32(static_cast<uint32_t>(plan.path_levels.size()));
      for (size_t il = 0; il < plan.item_levels.size(); ++il) {
        for (size_t pl = 0; pl < plan.path_levels.size(); ++pl) {
          const std::vector<const FlowCell*> cells =
              cube.cuboid(il, pl).SortedCells();
          w.U32(static_cast<uint32_t>(cells.size()));
          for (const FlowCell* cell : cells) {
            w.U32(static_cast<uint32_t>(cell->dims.size()));
            for (ItemId id : cell->dims) w.U32(id);
            w.U32(cell->support);
          }
        }
      }
      response.body = w.data();
      break;
    }
  }
  return response;
}

}  // namespace flowcube
