#ifndef FLOWCUBE_SERVE_QUERY_SERVICE_H_
#define FLOWCUBE_SERVE_QUERY_SERVICE_H_

#include "serve/protocol.h"
#include "serve/snapshot_registry.h"

namespace flowcube {

// Executes decoded FCQP requests against published cube snapshots. One
// request pins exactly one snapshot for its whole execution (the epoch is
// echoed in the response), so the body always describes a single consistent
// cube even while the maintainer keeps publishing newer epochs.
//
// Response bodies are deterministic text built from the canonical cell
// serialization (flowcube/dump.h), chosen so a response is byte-comparable
// against a from-scratch rebuild of the same epoch — the snapshot isolation
// test's differential oracle:
//
//   kPointLookup / kCellOrAncestor:
//     "cell <name>\nil <il> pl <pl>\n" + DumpFlowCell(cell)
//   kDrillDown:
//     "children <n>\n" then per child (sorted by coordinates)
//     "child <name>\n" + DumpFlowCell(child)
//   kSimilarity:
//     "distance <%.17g>\n"
//   kStats:
//     "records <n>\ncuboids <n>\ncells <n>\nredundant <n>\n"
//     (memory is deliberately absent: vector capacities differ between a
//     clone and a rebuild, and the body must not)
//
// Errors map straight onto the Status vocabulary: the response carries the
// failing code and message with an empty body.
class QueryService {
 public:
  // `registry` must outlive the service.
  explicit QueryService(const SnapshotRegistry* registry);

  // Pins the registry's current snapshot and executes. Before the first
  // Publish, every request fails with kFailedPrecondition and epoch 0.
  QueryResponse Execute(const QueryRequest& request) const;

  // Executes against an explicit snapshot. Exposed so the differential
  // oracle can run the same code path against a full rebuild of one epoch.
  static QueryResponse ExecuteOn(const CubeSnapshot& snapshot,
                                 const QueryRequest& request);

 private:
  const SnapshotRegistry* registry_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_SERVE_QUERY_SERVICE_H_
