#ifndef FLOWCUBE_SERVE_QUERY_SERVICE_H_
#define FLOWCUBE_SERVE_QUERY_SERVICE_H_

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/thread_annotations.h"
#include "serve/protocol.h"
#include "serve/snapshot_registry.h"

namespace flowcube {

// Tuning knobs for QueryService.
struct QueryServiceOptions {
  // Entry capacity of the cell-name lookup cache: successful kPointLookup
  // responses keyed by (epoch, pl_index, value names), evicted LRU. The
  // epoch lives in the key, so a cached body can never describe anything
  // but the snapshot it was rendered from; entries from superseded epochs
  // simply age out. 0 disables the cache. Hit/miss counts are exported as
  // serve.cell_cache_hits / serve.cell_cache_misses.
  size_t cell_cache_capacity = 256;
};

// Executes decoded FCQP requests against published cube snapshots. One
// request pins exactly one snapshot for its whole execution (the epoch is
// echoed in the response), so the body always describes a single consistent
// cube even while the maintainer keeps publishing newer epochs.
//
// Response bodies are deterministic text built from the canonical cell
// serialization (flowcube/dump.h), chosen so a response is byte-comparable
// against a from-scratch rebuild of the same epoch — the snapshot isolation
// test's differential oracle:
//
//   kPointLookup / kCellOrAncestor:
//     "cell <name>\nil <il> pl <pl>\n" + DumpFlowCell(cell)
//   kDrillDown:
//     "children <n>\n" then per child (sorted by coordinates)
//     "child <name>\n" + DumpFlowCell(child)
//   kSimilarity:
//     "distance <%.17g>\n"
//   kStats:
//     "records <n>\ncuboids <n>\ncells <n>\nredundant <n>\n"
//     (memory is deliberately absent: vector capacities differ between a
//     clone and a rebuild, and the body must not)
//
// The shard-internal requests carry binary bodies instead (io/binary_io
// little-endian primitives; flowgraphs in the FCSP node-table encoding of
// stream/checkpoint.h EncodeFlowGraph):
//
//   kCellFetchBatch:
//     u32 count, then per requested coordinate:
//       u8 found; when found: u32 support, flowgraph
//   kChildrenFetch:
//     u8 parent_found; when found: u32 parent_support, flowgraph
//     u32 num_children, then per child (sorted by coordinates):
//       u32 key_size, u32 key ids..., u32 support, flowgraph
//   kStatsFetch:
//     u64 records, u32 num_item_levels, u32 num_path_levels, then per
//     cuboid (item level outer, path level inner):
//       u32 num_cells, then per cell (sorted by coordinates):
//         u32 key_size, u32 key ids..., u32 support
//
// Errors map straight onto the Status vocabulary: the response carries the
// failing code and message with an empty body.
class QueryService {
 public:
  // `registry` must outlive the service.
  explicit QueryService(const SnapshotRegistry* registry,
                        QueryServiceOptions options = {});

  // Pins the registry's current snapshot and executes. Before the first
  // Publish, every request fails with kFailedPrecondition and epoch 0.
  // Successful point lookups are served from / inserted into the cell-name
  // cache; cached responses are byte-identical to a fresh execution
  // because the cache stores completed ExecuteOn output per epoch.
  QueryResponse Execute(const QueryRequest& request) const;

  // Executes against an explicit snapshot, bypassing the cache. Exposed so
  // the differential oracle can run the same code path against a full
  // rebuild of one epoch.
  static QueryResponse ExecuteOn(const CubeSnapshot& snapshot,
                                 const QueryRequest& request);

 private:
  // An LRU entry: cache key -> the successful response's (epoch, body).
  struct CachedLookup {
    std::string key;
    uint64_t epoch = 0;
    std::string body;
  };

  bool CacheGet(const std::string& key, uint64_t* epoch,
                std::string* body) const;
  void CachePut(const std::string& key, uint64_t epoch,
                const std::string& body) const;

  const SnapshotRegistry* registry_;
  QueryServiceOptions options_;

  mutable Mutex cache_mu_;
  // Most-recently-used at the front.
  mutable std::list<CachedLookup> cache_lru_ FC_GUARDED_BY(cache_mu_);
  mutable std::unordered_map<std::string, std::list<CachedLookup>::iterator>
      cache_index_ FC_GUARDED_BY(cache_mu_);
};

}  // namespace flowcube

#endif  // FLOWCUBE_SERVE_QUERY_SERVICE_H_
