#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"

namespace flowcube {
namespace {

constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

struct ServerMetrics {
  Counter& accepted =
      MetricRegistry::Global().counter("serve.connections.accepted");
  Counter& closed =
      MetricRegistry::Global().counter("serve.connections.closed");
  Counter& dropped_slow =
      MetricRegistry::Global().counter("serve.connections.dropped_slow");
  Counter& frames_in = MetricRegistry::Global().counter("serve.frames.in");
  Counter& frames_out = MetricRegistry::Global().counter("serve.frames.out");
  Gauge& active = MetricRegistry::Global().gauge("serve.connections.active");
  Histogram& worker_seconds =
      MetricRegistry::Global().histogram("serve.worker_seconds");

  static ServerMetrics& Get() {
    static ServerMetrics* m = new ServerMetrics();
    return *m;
  }
};

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

}  // namespace

// One accepted socket. The fd is owned here and closed only on
// destruction, which happens after both the connection table and every
// in-flight request released their shared_ptr.
struct QueryServer::Connection {
  Connection(int fd_in, uint64_t id_in, size_t max_payload)
      : fd(fd_in), id(id_in), assembler(max_payload) {}
  ~Connection() { ::close(fd); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;
  const uint64_t id;

  // Event thread only.
  FrameAssembler assembler;

  Mutex mu;
  // Response bytes not yet accepted by the socket.
  std::string out FC_GUARDED_BY(mu);
  // Whether the epoll interest set currently includes EPOLLOUT.
  bool want_write FC_GUARDED_BY(mu) = false;

  // Set (by either side) when the connection is beyond saving: the event
  // thread tears it down at the next event. A worker that drops a slow
  // reader also shutdown()s the socket so that event arrives promptly.
  std::atomic<bool> dropped{false};
};

QueryServer::QueryServer(const QueryService* service, ServerOptions options)
    : service_(service),
      options_(options),
      queue_(options.queue_capacity == 0 ? 1 : options.queue_capacity) {}

Result<std::unique_ptr<QueryServer>> QueryServer::Start(
    const QueryService* service, ServerOptions options) {
  FC_CHECK(service != nullptr);
  FC_CHECK_MSG(options.num_workers > 0, "num_workers must be > 0");
  std::unique_ptr<QueryServer> server(new QueryServer(service, options));
  FC_RETURN_IF_ERROR(server->Init());
  return server;
}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Init() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Errno("epoll_ctl(wake)");
  }

  event_thread_ = std::thread([this] { EventLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void QueryServer::Shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;

  // Order matters: close the queue first so an event thread blocked in
  // Push() wakes with false, then raise the stop flag and poke the eventfd
  // so epoll_wait returns. Workers are joined after the event thread; per
  // the BoundedQueue contract they drain every accepted request first.
  queue_.Close();
  stopping_.store(true, std::memory_order_release);
  uint64_t tick = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &tick, sizeof(tick));
  if (event_thread_.joinable()) event_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }

  // All threads are gone; releasing the table closes every remaining
  // socket via the Connection destructors.
  ServerMetrics& metrics = ServerMetrics::Get();
  metrics.closed.Add(conns_.size());
  conns_.clear();
  active_connections_.store(0, std::memory_order_relaxed);
  metrics.active.Set(0);

  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void QueryServer::EventLoop() {
  std::array<epoll_event, 64> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(), events.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "flowcube serve: epoll_wait failed: %s\n",
                   std::strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
      } else if (tag == kListenTag) {
        AcceptAll();
      } else {
        HandleConnEvent(tag, events[i].events);
      }
    }
  }
}

void QueryServer::AcceptAll() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a racing client that went away
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf,
                   sizeof(options_.sndbuf));
    }
    const uint64_t id = next_conn_id_++;
    auto conn =
        std::make_shared<Connection>(fd, id, options_.max_frame_payload);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn destructor closes the fd
    }
    conns_.emplace(id, std::move(conn));
    ServerMetrics::Get().accepted.Increment();
    const size_t active =
        active_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
    ServerMetrics::Get().active.Set(static_cast<int64_t>(active));
  }
}

void QueryServer::HandleConnEvent(uint64_t id, uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const std::shared_ptr<Connection>& conn = it->second;

  if (conn->dropped.load(std::memory_order_acquire) ||
      (events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConn(id);
    return;
  }

  if ((events & EPOLLOUT) != 0) {
    bool ok = true;
    {
      MutexLock lock(conn->mu);
      ok = FlushLocked(conn.get());
      if (ok && conn->out.empty() && conn->want_write) {
        conn->want_write = false;
        ModEvents(*conn, false);
      }
    }
    if (!ok) {
      CloseConn(id);
      return;
    }
  }

  if ((events & EPOLLIN) != 0) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->assembler.Append(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      CloseConn(id);  // orderly close (0) or hard error
      return;
    }
    for (;;) {
      Result<std::optional<std::string>> frame = conn->assembler.Next();
      if (!frame.ok()) {
        // The stream has no resync point after a framing error; drop the
        // connection (the protocol tests cover the per-error statuses via
        // DecodeFrameExact).
        CloseConn(id);
        return;
      }
      if (!frame->has_value()) break;
      ServerMetrics::Get().frames_in.Increment();
      if (!queue_.Push(ServeWork{conn, std::move(**frame)})) {
        return;  // shutting down; request dropped with the queue closed
      }
    }
  }
}

void QueryServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  conns_.erase(it);  // fd closes when the last in-flight request finishes
  ServerMetrics::Get().closed.Increment();
  const size_t active =
      active_connections_.fetch_sub(1, std::memory_order_relaxed) - 1;
  ServerMetrics::Get().active.Set(static_cast<int64_t>(active));
}

void QueryServer::ModEvents(const Connection& conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn.id;
  // ENOENT (connection already torn down) and EBADF (post-shutdown) are
  // benign here.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

bool QueryServer::FlushLocked(Connection* conn) {
  size_t sent = 0;
  while (sent < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + sent, conn->out.size() - sent,
               MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    conn->dropped.store(true, std::memory_order_release);
    conn->out.erase(0, sent);
    return false;
  }
  conn->out.erase(0, sent);
  return true;
}

void QueryServer::SendToConn(const std::shared_ptr<Connection>& conn,
                             std::string_view bytes) {
  if (conn->dropped.load(std::memory_order_acquire)) return;
  MutexLock lock(conn->mu);
  conn->out.append(bytes.data(), bytes.size());
  if (!FlushLocked(conn.get())) {
    ::shutdown(conn->fd, SHUT_RDWR);
    return;
  }
  if (conn->out.empty()) {
    ServerMetrics::Get().frames_out.Increment();
    return;
  }
  if (conn->out.size() > options_.max_write_buffer) {
    // Slow reader: cap the memory it can pin and let the event thread reap
    // the connection.
    conn->dropped.store(true, std::memory_order_release);
    ServerMetrics::Get().dropped_slow.Increment();
    ::shutdown(conn->fd, SHUT_RDWR);
    return;
  }
  ServerMetrics::Get().frames_out.Increment();
  if (!conn->want_write) {
    conn->want_write = true;
    ModEvents(*conn, true);
  }
}

void QueryServer::WorkerLoop() {
  ServerMetrics& metrics = ServerMetrics::Get();
  for (;;) {
    std::optional<ServeWork> work = queue_.Pop();
    if (!work.has_value()) return;  // closed and drained
    Stopwatch timer;
    QueryResponse response;
    Result<QueryRequest> request = DecodeRequest(work->payload);
    if (!request.ok()) {
      // The frame was well-formed but the payload was not a request; the
      // id is unknowable, so 0 goes back.
      response.code = request.status().code();
      response.message = request.status().message();
    } else {
      response = service_->Execute(*request);
    }
    SendToConn(work->conn, EncodeFrame(EncodeResponse(response),
                                       options_.max_frame_payload));
    metrics.worker_seconds.Record(timer.ElapsedSeconds());
  }
}

}  // namespace flowcube
