#include "serve/protocol.h"

#include <utility>

#include "common/logging.h"
#include "io/binary_io.h"

namespace flowcube {
namespace {

// Reads the little-endian u32 at `offset`; the caller guarantees bounds.
uint32_t PeekU32(std::string_view bytes, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

// Validates a complete 16-byte header. Only the payload-size field needs
// more bytes to judge, so every error here is independent of how much of
// the payload has arrived.
Status CheckHeader(std::string_view header, size_t max_payload) {
  if (PeekU32(header, 0) != kFrameMagic) {
    return Status::InvalidArgument("malformed frame: bad magic");
  }
  if (PeekU32(header, 4) != kProtocolVersion) {
    return Status::InvalidArgument("malformed frame: unsupported version");
  }
  if (PeekU32(header, 12) > max_payload) {
    return Status::InvalidArgument(
        "malformed frame: payload length exceeds limit");
  }
  return Status::OK();
}

Status CheckPayloadCrc(std::string_view header, std::string_view payload) {
  if (Crc32(payload) != PeekU32(header, 8)) {
    return Status::InvalidArgument(
        "malformed frame: payload checksum mismatch");
  }
  return Status::OK();
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("malformed request: truncated ") +
                                 what);
}

// Reads a length-prefixed dimension-value list with the count cap applied
// before any allocation.
Status ReadValues(ByteReader* reader, const char* what,
                  std::vector<std::string>* out) {
  uint32_t count = 0;
  if (!reader->U32(&count).ok()) return Truncated(what);
  if (count > kMaxQueryValues) {
    return Status::InvalidArgument(
        "malformed request: too many dimension values");
  }
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader->Str(&(*out)[i]).ok()) return Truncated(what);
  }
  return Status::OK();
}

void WriteValues(ByteWriter* writer, const std::vector<std::string>& values) {
  writer->U32(static_cast<uint32_t>(values.size()));
  for (const std::string& v : values) writer->Str(v);
}

// Reads a length-prefixed coordinate list with both caps (list length,
// per-coordinate key length) applied before any allocation.
Status ReadCoords(ByteReader* reader, std::vector<WireCellCoord>* out) {
  uint32_t count = 0;
  if (!reader->U32(&count).ok()) return Truncated("body");
  if (count > kMaxCellCoords) {
    return Status::InvalidArgument("malformed request: too many coordinates");
  }
  out->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireCellCoord& c = (*out)[i];
    if (!reader->U32(&c.il_index).ok()) return Truncated("body");
    uint32_t key_size = 0;
    if (!reader->U32(&key_size).ok()) return Truncated("body");
    if (key_size > kMaxQueryValues) {
      return Status::InvalidArgument(
          "malformed request: coordinate key too long");
    }
    c.key.resize(key_size);
    for (uint32_t k = 0; k < key_size; ++k) {
      if (!reader->U32(&c.key[k]).ok()) return Truncated("body");
    }
  }
  return Status::OK();
}

void WriteCoords(ByteWriter* writer, const std::vector<WireCellCoord>& coords) {
  writer->U32(static_cast<uint32_t>(coords.size()));
  for (const WireCellCoord& c : coords) {
    writer->U32(c.il_index);
    writer->U32(static_cast<uint32_t>(c.key.size()));
    for (uint32_t id : c.key) writer->U32(id);
  }
}

}  // namespace

std::string EncodeFrame(std::string_view payload, size_t max_payload) {
  FC_CHECK_MSG(payload.size() <= max_payload,
               "frame payload exceeds the frame cap: " << payload.size());
  ByteWriter writer;
  writer.U32(kFrameMagic);
  writer.U32(kProtocolVersion);
  writer.U32(Crc32(payload));
  writer.U32(static_cast<uint32_t>(payload.size()));
  std::string out = writer.data();
  out.append(payload.data(), payload.size());
  return out;
}

Result<std::string> DecodeFrameExact(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::InvalidArgument("malformed frame: truncated header");
  }
  const std::string_view header = bytes.substr(0, kFrameHeaderSize);
  FC_RETURN_IF_ERROR(CheckHeader(header, kMaxFramePayload));
  const size_t payload_size = PeekU32(header, 12);
  if (bytes.size() < kFrameHeaderSize + payload_size) {
    return Status::InvalidArgument("malformed frame: truncated payload");
  }
  if (bytes.size() > kFrameHeaderSize + payload_size) {
    return Status::InvalidArgument("malformed frame: trailing bytes after frame");
  }
  const std::string_view payload = bytes.substr(kFrameHeaderSize);
  FC_RETURN_IF_ERROR(CheckPayloadCrc(header, payload));
  return std::string(payload);
}

void FrameAssembler::Append(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

Result<std::optional<std::string>> FrameAssembler::Next() {
  if (!poisoned_.ok()) return poisoned_;
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const std::string_view pending = std::string_view(buf_).substr(pos_);
  if (pending.size() < kFrameHeaderSize) return std::optional<std::string>();
  const std::string_view header = pending.substr(0, kFrameHeaderSize);
  Status s = CheckHeader(header, max_payload_);
  if (!s.ok()) {
    poisoned_ = s;
    return poisoned_;
  }
  const size_t payload_size = PeekU32(header, 12);
  if (pending.size() < kFrameHeaderSize + payload_size) {
    return std::optional<std::string>();
  }
  const std::string_view payload =
      pending.substr(kFrameHeaderSize, payload_size);
  s = CheckPayloadCrc(header, payload);
  if (!s.ok()) {
    poisoned_ = s;
    return poisoned_;
  }
  pos_ += kFrameHeaderSize + payload_size;
  return std::optional<std::string>(std::string(payload));
}

std::string EncodeRequest(const QueryRequest& request) {
  ByteWriter writer;
  writer.U8(static_cast<uint8_t>(request.type));
  writer.U64(request.request_id);
  switch (request.type) {
    case RequestType::kPointLookup:
    case RequestType::kCellOrAncestor:
      writer.U32(request.pl_index);
      WriteValues(&writer, request.values);
      break;
    case RequestType::kDrillDown:
      writer.U32(request.pl_index);
      writer.U32(request.dim);
      WriteValues(&writer, request.values);
      break;
    case RequestType::kSimilarity:
      writer.U32(request.pl_index);
      WriteValues(&writer, request.values);
      WriteValues(&writer, request.values_b);
      break;
    case RequestType::kStats:
      break;
    case RequestType::kCellFetchBatch:
      writer.U32(request.pl_index);
      WriteCoords(&writer, request.coords);
      break;
    case RequestType::kChildrenFetch:
      writer.U32(request.pl_index);
      writer.U32(request.dim);
      WriteCoords(&writer, request.coords);
      break;
    case RequestType::kStatsFetch:
      break;
  }
  return writer.data();
}

Result<QueryRequest> DecodeRequest(std::string_view payload) {
  ByteReader reader(payload);
  uint8_t type = 0;
  if (!reader.U8(&type).ok()) return Truncated("header");
  QueryRequest request;
  if (!reader.U64(&request.request_id).ok()) return Truncated("header");
  switch (type) {
    case static_cast<uint8_t>(RequestType::kPointLookup):
    case static_cast<uint8_t>(RequestType::kCellOrAncestor):
      request.type = static_cast<RequestType>(type);
      if (!reader.U32(&request.pl_index).ok()) return Truncated("body");
      FC_RETURN_IF_ERROR(ReadValues(&reader, "body", &request.values));
      break;
    case static_cast<uint8_t>(RequestType::kDrillDown):
      request.type = RequestType::kDrillDown;
      if (!reader.U32(&request.pl_index).ok()) return Truncated("body");
      if (!reader.U32(&request.dim).ok()) return Truncated("body");
      FC_RETURN_IF_ERROR(ReadValues(&reader, "body", &request.values));
      break;
    case static_cast<uint8_t>(RequestType::kSimilarity):
      request.type = RequestType::kSimilarity;
      if (!reader.U32(&request.pl_index).ok()) return Truncated("body");
      FC_RETURN_IF_ERROR(ReadValues(&reader, "body", &request.values));
      FC_RETURN_IF_ERROR(ReadValues(&reader, "body", &request.values_b));
      break;
    case static_cast<uint8_t>(RequestType::kStats):
      request.type = RequestType::kStats;
      break;
    case static_cast<uint8_t>(RequestType::kCellFetchBatch):
      request.type = RequestType::kCellFetchBatch;
      if (!reader.U32(&request.pl_index).ok()) return Truncated("body");
      FC_RETURN_IF_ERROR(ReadCoords(&reader, &request.coords));
      break;
    case static_cast<uint8_t>(RequestType::kChildrenFetch):
      request.type = RequestType::kChildrenFetch;
      if (!reader.U32(&request.pl_index).ok()) return Truncated("body");
      if (!reader.U32(&request.dim).ok()) return Truncated("body");
      FC_RETURN_IF_ERROR(ReadCoords(&reader, &request.coords));
      break;
    case static_cast<uint8_t>(RequestType::kStatsFetch):
      request.type = RequestType::kStatsFetch;
      break;
    default:
      return Status::InvalidArgument("malformed request: unknown type");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("malformed request: trailing bytes");
  }
  return request;
}

std::string EncodeResponse(const QueryResponse& response) {
  ByteWriter writer;
  writer.U64(response.request_id);
  writer.U64(response.epoch);
  writer.U8(static_cast<uint8_t>(response.code));
  writer.Str(response.message);
  writer.Str(response.body);
  return writer.data();
}

Result<QueryResponse> DecodeResponse(std::string_view payload) {
  ByteReader reader(payload);
  QueryResponse response;
  uint8_t code = 0;
  if (!reader.U64(&response.request_id).ok() ||
      !reader.U64(&response.epoch).ok() || !reader.U8(&code).ok() ||
      !reader.Str(&response.message).ok() || !reader.Str(&response.body).ok()) {
    return Status::InvalidArgument("malformed response: truncated");
  }
  if (code > static_cast<uint8_t>(Status::Code::kDeadlineExceeded)) {
    return Status::InvalidArgument("malformed response: unknown status code");
  }
  response.code = static_cast<Status::Code>(code);
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("malformed response: trailing bytes");
  }
  return response;
}

}  // namespace flowcube
