#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace flowcube {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<ServeClient> ServeClient::Connect(uint16_t port, int rcvbuf) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (rcvbuf > 0) {
    // Before connect() so the shrunken window is what gets advertised.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  return ServeClient(fd);
}

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), assembler_(std::move(other.assembler_)) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    assembler_ = std::move(other.assembler_);
    other.fd_ = -1;
  }
  return *this;
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ServeClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<QueryResponse> ServeClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  for (;;) {
    Result<std::optional<std::string>> frame = assembler_.Next();
    if (!frame.ok()) return frame.status();
    if (frame->has_value()) return DecodeResponse(**frame);
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Internal("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    assembler_.Append(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<QueryResponse> ServeClient::Call(const QueryRequest& request) {
  FC_RETURN_IF_ERROR(SendRaw(EncodeFrame(EncodeRequest(request))));
  return ReadResponse();
}

}  // namespace flowcube
