#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

namespace flowcube {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

// The connect-time errno values that mean "nothing (healthy) is listening
// there right now" — worth a retry, surfaced as kUnavailable.
bool IsUnavailableErrno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == ECONNABORTED ||
         err == ENETUNREACH || err == EHOSTUNREACH;
}

// One connect attempt. Returns the connected fd, kUnavailable for a refused
// connection, kDeadlineExceeded for a timed-out one, kInternal otherwise.
Result<int> ConnectOnce(uint16_t port, const ClientOptions& options) {
  const bool timed = options.connect_timeout_ms > 0;
  const int fd = ::socket(
      AF_INET, SOCK_STREAM | SOCK_CLOEXEC | (timed ? SOCK_NONBLOCK : 0), 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.rcvbuf > 0) {
    // Before connect() so the shrunken window is what gets advertised.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.rcvbuf,
                 sizeof(options.rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (timed && errno == EINPROGRESS) {
      // Await writability for the allowance, then read the final outcome
      // from SO_ERROR. poll() carries the deadline for us — no clock reads.
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, options.connect_timeout_ms);
      if (ready == 0) {
        ::close(fd);
        return Status::DeadlineExceeded("connect timed out");
      }
      if (ready < 0) {
        Status s = Errno("poll");
        ::close(fd);
        return s;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ::close(fd);
        if (IsUnavailableErrno(err)) {
          return Status::Unavailable(std::string("connect: ") +
                                     std::strerror(err));
        }
        return Status::Internal(std::string("connect: ") + std::strerror(err));
      }
    } else {
      const int err = errno;
      ::close(fd);
      if (IsUnavailableErrno(err)) {
        return Status::Unavailable(std::string("connect: ") +
                                   std::strerror(err));
      }
      return Status::Internal(std::string("connect: ") + std::strerror(err));
    }
  }
  if (timed) {
    // The deadline only governs connection establishment; the socket reads
    // and writes stay blocking (ReadResponse applies its own poll budget).
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  return fd;
}

}  // namespace

Result<ServeClient> ServeClient::Connect(uint16_t port, int rcvbuf) {
  ClientOptions options;
  options.rcvbuf = rcvbuf;
  return Connect(port, options);
}

Result<ServeClient> ServeClient::Connect(uint16_t port,
                                         const ClientOptions& options) {
  int backoff_ms = options.backoff_initial_ms;
  for (int attempt = 0;; ++attempt) {
    Result<int> fd = ConnectOnce(port, options);
    if (fd.ok()) return ServeClient(*fd, options);
    // Only "nobody is listening (yet)" and establishment timeouts are
    // retryable; anything else is a real error the caller must see now.
    const bool retryable = fd.status().code() == Status::Code::kUnavailable ||
                           fd.status().code() == Status::Code::kDeadlineExceeded;
    if (!retryable || attempt >= options.reconnect_attempts) {
      return fd.status();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, options.backoff_max_ms);
  }
}

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_),
      read_timeout_ms_(other.read_timeout_ms_),
      max_frame_payload_(other.max_frame_payload_),
      assembler_(std::move(other.assembler_)) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    read_timeout_ms_ = other.read_timeout_ms_;
    max_frame_payload_ = other.max_frame_payload_;
    assembler_ = std::move(other.assembler_);
    other.fd_ = -1;
  }
  return *this;
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ServeClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<QueryResponse> ServeClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  for (;;) {
    Result<std::optional<std::string>> frame = assembler_.Next();
    if (!frame.ok()) return frame.status();
    if (frame->has_value()) return DecodeResponse(**frame);
    if (read_timeout_ms_ > 0) {
      // The whole allowance is granted to each wait-for-bytes; a response
      // trickling in over k reads can take up to k allowances, which is
      // fine — the point is that a silent server can't block us forever,
      // without this code ever reading a clock.
      pollfd pfd{fd_, POLLIN, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, read_timeout_ms_);
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        return Status::DeadlineExceeded("read timed out awaiting response");
      }
      if (ready < 0) return Errno("poll");
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Internal("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    assembler_.Append(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<QueryResponse> ServeClient::Call(const QueryRequest& request) {
  FC_RETURN_IF_ERROR(
      SendRaw(EncodeFrame(EncodeRequest(request), max_frame_payload_)));
  return ReadResponse();
}

}  // namespace flowcube
