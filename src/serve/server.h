#ifndef FLOWCUBE_SERVE_SERVER_H_
#define FLOWCUBE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/protocol.h"
#include "serve/query_service.h"
#include "stream/bounded_queue.h"

namespace flowcube {

struct ServerOptions {
  // TCP port; 0 picks an ephemeral port (read it back via port()). The
  // server binds loopback only — it is an analysis endpoint, not an
  // internet-facing daemon.
  uint16_t port = 0;
  // Request-execution threads.
  int num_workers = 4;
  // Decoded-request backlog between the event thread and the workers. When
  // full, the event thread blocks in Push — BoundedQueue backpressure — so
  // clients that outrun the workers are throttled at the socket instead of
  // buffering unboundedly.
  size_t queue_capacity = 1024;
  // A connection whose unsent responses exceed this many bytes (a slow or
  // stalled reader) is dropped rather than allowed to pin memory.
  size_t max_write_buffer = 8u << 20;
  // SO_SNDBUF for accepted sockets; 0 keeps the kernel default. The stress
  // tests shrink this so loopback's generous buffering can't absorb a slow
  // reader's backlog before max_write_buffer trips.
  int sndbuf = 0;
  // Frame-size cap applied to inbound frames and asserted on outbound
  // ones. Public servers keep the 1 MiB protocol default; shard-internal
  // servers (fronting a shard for a coordinator) pass
  // kMaxInternalFramePayload so bulk cell/stats transfers fit.
  size_t max_frame_payload = kMaxFramePayload;
};

// The FCQP TCP server (DESIGN.md §14): one epoll event thread owns accept,
// reads, and deferred writes; a small worker pool executes requests against
// pinned snapshots and sends responses directly when the socket has room.
//
// Threading:
//   - the event thread is the only toucher of the connection table and each
//     connection's FrameAssembler;
//   - a connection's outbound buffer is shared between workers (append +
//     opportunistic flush) and the event thread (EPOLLOUT flush), guarded
//     by the per-connection mutex;
//   - sockets are closed only by the Connection destructor, after the last
//     shared_ptr (table entry or in-flight request) drops, so a worker can
//     never write into a recycled fd.
//
// Shutdown (exercised by tests/serve_stress_test.cc): Shutdown() closes the
// request queue, wakes and joins the event thread, then joins the workers —
// which, per the BoundedQueue contract, drain every accepted request before
// exiting — and finally releases the connections. In-flight requests thus
// finish executing; their responses are delivered when the socket still has
// room and dropped with the connection otherwise. Idempotent; the
// destructor calls it.
class QueryServer {
 public:
  // Binds, listens, and starts the threads. `service` must outlive the
  // server.
  static Result<std::unique_ptr<QueryServer>> Start(
      const QueryService* service, ServerOptions options = {});

  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // The bound port (resolves ephemeral binds).
  uint16_t port() const { return port_; }

  // Currently open connections.
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  void Shutdown();

 private:
  struct Connection;
  struct ServeWork {
    std::shared_ptr<Connection> conn;
    std::string payload;
  };

  QueryServer(const QueryService* service, ServerOptions options);

  Status Init();
  void EventLoop();
  void WorkerLoop();
  void AcceptAll();
  void HandleConnEvent(uint64_t id, uint32_t events);
  void CloseConn(uint64_t id);
  // Re-declares the fd's epoll interest set (EPOLLIN, plus EPOLLOUT when
  // the out buffer has pending bytes).
  void ModEvents(const Connection& conn, bool want_write);
  // Sends as much of the out buffer as the socket accepts. Returns false
  // when the connection failed and must be dropped.
  bool FlushLocked(Connection* conn);
  // Worker side: append a response frame and flush opportunistically.
  void SendToConn(const std::shared_ptr<Connection>& conn,
                  std::string_view bytes);

  const QueryService* service_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> stopping_{false};
  bool shutdown_done_ = false;
  BoundedQueue<ServeWork> queue_;
  std::thread event_thread_;
  std::vector<std::thread> workers_;

  // Event-thread-owned (touched elsewhere only after the joins in
  // Shutdown): live connections by id. std::map for deterministic
  // iteration under the project's lint rules.
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen socket, 1 = wake eventfd

  std::atomic<size_t> active_connections_{0};
};

}  // namespace flowcube

#endif  // FLOWCUBE_SERVE_SERVER_H_
