#include "serve/snapshot_registry.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

struct RegistryMetrics {
  Counter& published =
      MetricRegistry::Global().counter("serve.snapshots.published");
  Counter& acquires =
      MetricRegistry::Global().counter("serve.snapshots.acquires");
  Counter& shared_graphs =
      MetricRegistry::Global().counter("serve.snapshot_shared_graphs");
  Gauge& epoch = MetricRegistry::Global().gauge("serve.snapshot.epoch");
  Gauge& live = MetricRegistry::Global().gauge("serve.snapshots.live");

  static RegistryMetrics& Get() {
    static RegistryMetrics* m = new RegistryMetrics();
    return *m;
  }
};

}  // namespace

uint64_t SnapshotRegistry::Publish(std::shared_ptr<const FlowCube> cube,
                                   uint64_t records) {
  FC_CHECK_MSG(cube != nullptr, "cannot publish a null cube snapshot");
  auto snapshot = std::make_shared<CubeSnapshot>();
  snapshot->records = records;
  snapshot->cube = std::move(cube);
  size_t live = 0;
  uint64_t epoch = 0;
  {
    MutexLock lock(mu_);
    epoch = ++epoch_;
    snapshot->epoch = epoch;
    current_ = std::move(snapshot);
    outstanding_.push_back(current_);
    // Prune retirements opportunistically so the bookkeeping stays O(live),
    // not O(epochs ever published).
    std::erase_if(outstanding_,
                  [](const std::weak_ptr<const CubeSnapshot>& w) {
                    return w.expired();
                  });
    live = outstanding_.size();
  }
  RegistryMetrics& metrics = RegistryMetrics::Get();
  metrics.published.Increment();
  metrics.epoch.Set(static_cast<int64_t>(epoch));
  metrics.live.Set(static_cast<int64_t>(live));
  return epoch;
}

SnapshotPtr SnapshotRegistry::Acquire() const {
  RegistryMetrics::Get().acquires.Increment();
  MutexLock lock(mu_);
  return current_;
}

uint64_t SnapshotRegistry::current_epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

size_t SnapshotRegistry::live_snapshots() const {
  MutexLock lock(mu_);
  std::erase_if(outstanding_,
                [](const std::weak_ptr<const CubeSnapshot>& w) {
                  return w.expired();
                });
  return outstanding_.size();
}

// Sealed flowgraph buffers the new snapshot physically shares with the
// previous epoch. Clone() copies a sealed graph by bumping the refcount on
// its column block, so a cell untouched between two Apply batches costs no
// new graph memory across epochs — this counts those, per publication, for
// the serve.snapshot_shared_graphs counter and the isolation tests.
size_t CountSharedGraphs(const FlowCube& next, const FlowCube& prev) {
  size_t shared = 0;
  next.ForEachCuboid([&](const Cuboid& cuboid) {
    const Cuboid* before =
        prev.FindCuboid(cuboid.item_level(), cuboid.path_level());
    if (before == nullptr) return;
    cuboid.ForEach([&](const FlowCell& cell) {
      const void* identity = cell.graph.sealed_identity();
      if (identity == nullptr) return;
      const FlowCell* old = before->Find(cell.dims);
      if (old != nullptr && old->graph.sealed_identity() == identity) {
        ++shared;
      }
    });
  });
  return shared;
}

void AttachToRegistry(IncrementalMaintainer* maintainer,
                      SnapshotRegistry* registry) {
  FC_CHECK(maintainer != nullptr && registry != nullptr);
  maintainer->SetPublishHook([registry](const IncrementalMaintainer& m) {
    SnapshotPtr prev = registry->Acquire();
    auto clone = std::make_shared<const FlowCube>(m.cube().Clone());
    if (prev != nullptr && prev->cube != nullptr) {
      RegistryMetrics::Get().shared_graphs.Add(
          static_cast<int64_t>(CountSharedGraphs(*clone, *prev->cube)));
    }
    registry->Publish(std::move(clone), m.live_record_count());
  });
}

}  // namespace flowcube
