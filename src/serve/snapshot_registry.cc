#include "serve/snapshot_registry.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

struct RegistryMetrics {
  Counter& published =
      MetricRegistry::Global().counter("serve.snapshots.published");
  Counter& acquires =
      MetricRegistry::Global().counter("serve.snapshots.acquires");
  Gauge& epoch = MetricRegistry::Global().gauge("serve.snapshot.epoch");
  Gauge& live = MetricRegistry::Global().gauge("serve.snapshots.live");

  static RegistryMetrics& Get() {
    static RegistryMetrics* m = new RegistryMetrics();
    return *m;
  }
};

}  // namespace

uint64_t SnapshotRegistry::Publish(std::shared_ptr<const FlowCube> cube,
                                   uint64_t records) {
  FC_CHECK_MSG(cube != nullptr, "cannot publish a null cube snapshot");
  auto snapshot = std::make_shared<CubeSnapshot>();
  snapshot->records = records;
  snapshot->cube = std::move(cube);
  size_t live = 0;
  uint64_t epoch = 0;
  {
    MutexLock lock(mu_);
    epoch = ++epoch_;
    snapshot->epoch = epoch;
    current_ = std::move(snapshot);
    outstanding_.push_back(current_);
    // Prune retirements opportunistically so the bookkeeping stays O(live),
    // not O(epochs ever published).
    std::erase_if(outstanding_,
                  [](const std::weak_ptr<const CubeSnapshot>& w) {
                    return w.expired();
                  });
    live = outstanding_.size();
  }
  RegistryMetrics& metrics = RegistryMetrics::Get();
  metrics.published.Increment();
  metrics.epoch.Set(static_cast<int64_t>(epoch));
  metrics.live.Set(static_cast<int64_t>(live));
  return epoch;
}

SnapshotPtr SnapshotRegistry::Acquire() const {
  RegistryMetrics::Get().acquires.Increment();
  MutexLock lock(mu_);
  return current_;
}

uint64_t SnapshotRegistry::current_epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

size_t SnapshotRegistry::live_snapshots() const {
  MutexLock lock(mu_);
  std::erase_if(outstanding_,
                [](const std::weak_ptr<const CubeSnapshot>& w) {
                  return w.expired();
                });
  return outstanding_.size();
}

void AttachToRegistry(IncrementalMaintainer* maintainer,
                      SnapshotRegistry* registry) {
  FC_CHECK(maintainer != nullptr && registry != nullptr);
  maintainer->SetPublishHook([registry](const IncrementalMaintainer& m) {
    registry->Publish(std::make_shared<const FlowCube>(m.cube().Clone()),
                      m.live_record_count());
  });
}

}  // namespace flowcube
