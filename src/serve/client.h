#ifndef FLOWCUBE_SERVE_CLIENT_H_
#define FLOWCUBE_SERVE_CLIENT_H_

#include <cstdint>
#include <string_view>

#include "serve/protocol.h"

namespace flowcube {

// Minimal blocking FCQP client over loopback TCP: one socket, synchronous
// Call (send one request frame, read one response frame). This is the
// in-process client every serve test, the bench driver, and the demo speak
// through — exercising the full wire path (framing, epoll, worker pool)
// rather than calling QueryService directly.
class ServeClient {
 public:
  // Connects to 127.0.0.1:port. A positive `rcvbuf` sets SO_RCVBUF before
  // connecting (the slow-reader stress test shrinks it so the kernel can't
  // buffer responses on the client's behalf).
  static Result<ServeClient> Connect(uint16_t port, int rcvbuf = 0);

  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Sends `request` and blocks for its response. Fails with kInternal when
  // the server closes the connection first (e.g. after a framing error).
  Result<QueryResponse> Call(const QueryRequest& request);

  // Sends raw bytes as-is — the stress and protocol tests use this to put
  // malformed frames and partial writes on the wire.
  Status SendRaw(std::string_view bytes);

  // Reads until one complete frame arrives and returns its decoded
  // response.
  Result<QueryResponse> ReadResponse();

  // Closes the socket early (the destructor also does).
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameAssembler assembler_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_SERVE_CLIENT_H_
