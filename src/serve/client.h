#ifndef FLOWCUBE_SERVE_CLIENT_H_
#define FLOWCUBE_SERVE_CLIENT_H_

#include <cstdint>
#include <string_view>

#include "serve/protocol.h"

namespace flowcube {

// Connection behavior knobs for ServeClient. The defaults reproduce the
// original client exactly: blocking connect and reads with no deadline, one
// connect attempt, public frame cap.
struct ClientOptions {
  // A positive value sets SO_RCVBUF before connecting (the slow-reader
  // stress test shrinks it so the kernel can't buffer responses on the
  // client's behalf).
  int rcvbuf = 0;
  // Maximum time to wait for the TCP connect to complete; 0 blocks
  // indefinitely. Expiry surfaces as kDeadlineExceeded.
  int connect_timeout_ms = 0;
  // Maximum time ReadResponse waits for bytes to arrive; 0 blocks
  // indefinitely. The budget covers the whole response (poll is re-armed
  // per recv with the remaining allowance tracked in bytes-free attempt
  // counters, never wall-clock reads). Expiry surfaces as
  // kDeadlineExceeded.
  int read_timeout_ms = 0;
  // Extra connect attempts after a refused or timed-out one. Between
  // attempts the client sleeps backoff_initial_ms doubled per retry and
  // capped at backoff_max_ms — attempt-counter based, no clock reads, so
  // the lint's determinism rules hold.
  int reconnect_attempts = 0;
  int backoff_initial_ms = 10;
  int backoff_max_ms = 1000;
  // Frame-size cap for inbound responses. Shard-internal connections pass
  // kMaxInternalFramePayload; public clients keep the 1 MiB default.
  size_t max_frame_payload = kMaxFramePayload;
};

// Minimal blocking FCQP client over loopback TCP: one socket, synchronous
// Call (send one request frame, read one response frame). This is the
// in-process client every serve test, the bench driver, the demo, and the
// shard coordinator's remote backend speak through — exercising the full
// wire path (framing, epoll, worker pool) rather than calling QueryService
// directly.
//
// Failure vocabulary (pinned by tests/serve_client_test.cc):
//   kUnavailable       connect refused/reset — nothing is listening.
//   kDeadlineExceeded  connect or read exceeded its configured timeout.
//   kInvalidArgument   poisoned frame (bad magic/version/CRC/oversize) —
//                      the FrameAssembler's verbatim status.
//   kInternal          server closed the connection mid-conversation, or
//                      an unexpected socket error.
class ServeClient {
 public:
  // Connects to 127.0.0.1:port. The two-argument form keeps the original
  // signature; it is exactly Connect(port, ClientOptions{.rcvbuf = rcvbuf}).
  static Result<ServeClient> Connect(uint16_t port, int rcvbuf = 0);
  static Result<ServeClient> Connect(uint16_t port,
                                     const ClientOptions& options);

  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Sends `request` and blocks for its response (at most read_timeout_ms).
  // Fails with kInternal when the server closes the connection first (e.g.
  // after a framing error).
  Result<QueryResponse> Call(const QueryRequest& request);

  // Sends raw bytes as-is — the stress and protocol tests use this to put
  // malformed frames and partial writes on the wire.
  Status SendRaw(std::string_view bytes);

  // Reads until one complete frame arrives and returns its decoded
  // response.
  Result<QueryResponse> ReadResponse();

  // Closes the socket early (the destructor also does).
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  ServeClient(int fd, const ClientOptions& options)
      : fd_(fd),
        read_timeout_ms_(options.read_timeout_ms),
        max_frame_payload_(options.max_frame_payload),
        assembler_(options.max_frame_payload) {}

  int fd_ = -1;
  int read_timeout_ms_ = 0;
  size_t max_frame_payload_ = kMaxFramePayload;
  FrameAssembler assembler_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_SERVE_CLIENT_H_
