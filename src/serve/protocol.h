#ifndef FLOWCUBE_SERVE_PROTOCOL_H_
#define FLOWCUBE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace flowcube {

// FCQP — the FlowCube query protocol (DESIGN.md §14): the binary wire
// format the query server and its clients speak. Every message travels in
// one frame:
//
//   u32 magic "FCQP" | u32 version | u32 crc32(payload) | u32 payload size
//   payload bytes
//
// All integers are little-endian (io/binary_io.h primitives, the same
// substrate as the FCSP checkpoint format). The payload of a
// client-to-server frame is an encoded QueryRequest; server-to-client
// frames carry a QueryResponse. Like the checkpoint reader, the decoders
// are strictly bounds-checked and report every malformed input as a Status
// — truncation, bad magic, version skew, length-field overflow, and CRC
// tampering each map to a distinct, stable error message
// (tests/serve_protocol_test.cc pins them all).

inline constexpr uint32_t kFrameMagic = 0x50514346;  // "FCQP"
inline constexpr uint32_t kProtocolVersion = 1;
// Frame header bytes preceding the payload.
inline constexpr size_t kFrameHeaderSize = 16;
// Hard payload cap, enforced on both encode and decode: a length field
// beyond this is rejected before any allocation, so a hostile header cannot
// make the server reserve gigabytes.
inline constexpr size_t kMaxFramePayload = 1u << 20;
// Dimension-value lists longer than this are rejected at decode; no schema
// in this system has anywhere near 64 dimensions.
inline constexpr size_t kMaxQueryValues = 64;
// Cap on the coordinate list of a kCellFetchBatch request. The largest
// batch a coordinator sends is a cell-or-ancestor generalization closure,
// which is bounded by the product of per-dimension hierarchy depths —
// orders of magnitude below this.
inline constexpr size_t kMaxCellCoords = 4096;
// Payload cap for shard-internal connections (coordinator <-> shard
// server). Internal responses carry whole cuboid listings and per-cell
// flowgraph serializations, which outgrow the public 1 MiB cap at bench
// scale; both ends of an internal connection pass this to EncodeFrame /
// FrameAssembler / ServerOptions explicitly.
inline constexpr size_t kMaxInternalFramePayload = 1u << 26;

// Wraps `payload` in a frame. FC_CHECKs payload size against the cap — the
// cap is a protocol constant (public, or kMaxInternalFramePayload on
// shard-internal connections), not a negotiated limit, so an oversized
// outbound payload is a programming error.
std::string EncodeFrame(std::string_view payload,
                        size_t max_payload = kMaxFramePayload);

// Decodes a byte string that must contain exactly one complete frame;
// returns its payload. Used by tests and the fuzz harness; streaming
// consumers use FrameAssembler below.
Result<std::string> DecodeFrameExact(std::string_view bytes);

// Incremental frame extraction over a TCP byte stream: Append() raw bytes
// as they arrive, then call Next() until it yields nullopt (need more
// bytes). A non-OK status is fatal for the connection — after bad magic,
// version skew, an oversized length field, or a checksum mismatch the
// stream has no resynchronization point and must be closed.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Append(std::string_view bytes);

  // The next complete frame's payload, nullopt when the buffered bytes end
  // mid-frame. Once an error is returned, every further call returns the
  // same error.
  Result<std::optional<std::string>> Next();

  // Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;  // not const: assemblers move with their connection
  std::string buf_;
  size_t pos_ = 0;
  Status poisoned_;
};

// ---------------------------------------------------------------------------
// Requests.

enum class RequestType : uint8_t {
  // Resolve a cell by dimension value names ("*" = top level) at one path
  // level; the response body carries the cell's canonical serialization.
  kPointLookup = 1,
  // Like kPointLookup but falls back to the nearest materialized ancestor
  // (FlowCubeQuery::CellOrAncestor).
  kCellOrAncestor = 2,
  // Resolve a cell, then return every materialized child along `dim`.
  kDrillDown = 3,
  // Flowgraph distance between two cells (values / values_b).
  kSimilarity = 4,
  // Snapshot-level statistics: cuboids, cells, memory, live records.
  kStats = 5,

  // --- Shard-internal requests (coordinator -> shard) ---------------------
  // These carry pre-resolved coordinates (item-level index + sorted
  // dimension-item ids) instead of value names: the coordinator resolves
  // names once against its skeleton cube, and each fans out as exactly one
  // request per shard so the shard's single pinned snapshot answers every
  // probe of the public query at one consistent epoch. Bodies are binary
  // (serve/query_service.h documents each layout).

  // Fetch a batch of cells by coordinates: per coordinate, found flag,
  // support, and the serialized flowgraph.
  kCellFetchBatch = 6,
  // Fetch a parent cell and all its materialized drill-down children along
  // one dimension, with their flowgraphs.
  kChildrenFetch = 7,
  // Shard statistics: live record count plus every cuboid's (key, support)
  // list, for coordinator-side global aggregation.
  kStatsFetch = 8,
};

// Pre-resolved cell coordinates as they travel in a kCellFetchBatch /
// kChildrenFetch request: an index into the plan's item levels plus the
// sorted dimension-item-id key (flowcube/query.h CellCoords, made
// wire-width explicit). Dimension-item ids are a pure function of the
// schema (mining/item_catalog.h), so they mean the same thing on every
// shard as on the coordinator.
struct WireCellCoord {
  uint32_t il_index = 0;
  std::vector<uint32_t> key;

  friend bool operator==(const WireCellCoord& a, const WireCellCoord& b) =
      default;
};

// One decoded request. `values` holds the primary cell coordinates (one
// name per schema dimension, "*" for generalized); `values_b` is only used
// by kSimilarity, `dim` only by kDrillDown / kChildrenFetch, `coords` only
// by the shard-internal fetches (kCellFetchBatch takes the whole list,
// kChildrenFetch exactly one entry).
struct QueryRequest {
  RequestType type = RequestType::kPointLookup;
  // Echoed verbatim in the response so clients can pipeline requests.
  uint64_t request_id = 0;
  uint32_t pl_index = 0;
  std::vector<std::string> values;
  uint32_t dim = 0;
  std::vector<std::string> values_b;
  std::vector<WireCellCoord> coords;

  friend bool operator==(const QueryRequest& a, const QueryRequest& b) =
      default;
};

// Serializes a request payload (not framed; pass to EncodeFrame). The
// encoding is canonical: DecodeRequest ∘ EncodeRequest is the identity and
// EncodeRequest ∘ DecodeRequest reproduces accepted payloads byte-for-byte
// (the fuzz harness asserts this).
std::string EncodeRequest(const QueryRequest& request);
Result<QueryRequest> DecodeRequest(std::string_view payload);

// ---------------------------------------------------------------------------
// Responses.

struct QueryResponse {
  uint64_t request_id = 0;
  // Snapshot epoch the request executed against (0 = no snapshot was
  // published yet). Readers pin one epoch for the whole request, so every
  // byte of the body describes that single consistent cube.
  uint64_t epoch = 0;
  Status::Code code = Status::Code::kOk;
  // Status message for non-OK codes (empty on success).
  std::string message;
  // Type-specific body (serve/query_service.h documents each layout);
  // empty on error.
  std::string body;

  friend bool operator==(const QueryResponse& a, const QueryResponse& b) =
      default;
};

std::string EncodeResponse(const QueryResponse& response);
Result<QueryResponse> DecodeResponse(std::string_view payload);

}  // namespace flowcube

#endif  // FLOWCUBE_SERVE_PROTOCOL_H_
