#ifndef FLOWCUBE_SERVE_SNAPSHOT_REGISTRY_H_
#define FLOWCUBE_SERVE_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "flowcube/flowcube.h"

namespace flowcube {

class IncrementalMaintainer;

// One published, immutable cube snapshot. Readers that Acquire() it share
// ownership; the snapshot (epoch included) stays valid until the last
// shared_ptr drops, no matter how many newer epochs are published
// meanwhile.
struct CubeSnapshot {
  // Monotonic publication counter, starting at 1. Responses carry the epoch
  // they were served from, so clients (and the isolation tests) can match a
  // response against the exact cube state that produced it.
  uint64_t epoch = 0;
  // Live records the maintainer had applied when this snapshot was taken —
  // the key the differential oracle uses to rebuild this epoch from
  // scratch.
  uint64_t records = 0;
  std::shared_ptr<const FlowCube> cube;
};

using SnapshotPtr = std::shared_ptr<const CubeSnapshot>;

// RCU-style publication point between one writer (the stream maintainer)
// and any number of readers (DESIGN.md §14). Publish() swaps the current
// snapshot pointer under a short mutex hold; Acquire() copies it under the
// same mutex — a few nanoseconds, never blocked by query execution — and
// from then on the reader works lock-free against its pinned, immutable
// cube. Retirement is automatic: an old epoch's memory is released when the
// last reader unpins it (shared_ptr refcount), so a slow reader can never
// observe a half-applied batch and a fast writer can never free a cube out
// from under a reader.
//
// The registry never blocks ingestion on readers: Publish() only swaps a
// pointer, so the maintainer's Apply cadence is independent of query load
// (the clone it publishes is built outside any lock).
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  // Publishes `cube` as the next epoch and returns that epoch. `records` is
  // the maintainer's live record count at publication time.
  uint64_t Publish(std::shared_ptr<const FlowCube> cube, uint64_t records);

  // Pins the current snapshot. nullptr before the first Publish.
  SnapshotPtr Acquire() const;

  // Epoch of the most recent Publish (0 = nothing published yet).
  uint64_t current_epoch() const;

  // Number of snapshots still pinned somewhere (the current one included).
  // The shutdown stress test asserts this returns to 1 once all readers are
  // gone — a higher steady-state value means a leaked epoch pin.
  size_t live_snapshots() const;

 private:
  mutable Mutex mu_;
  SnapshotPtr current_ FC_GUARDED_BY(mu_);
  uint64_t epoch_ FC_GUARDED_BY(mu_) = 0;
  // Weak references to every published snapshot, pruned opportunistically;
  // what is still lockable is still pinned by some reader.
  mutable std::vector<std::weak_ptr<const CubeSnapshot>> outstanding_
      FC_GUARDED_BY(mu_);
};

// Wires a maintainer to a registry: installs a publish hook that clones the
// maintained cube after every successful Apply and publishes the clone.
// The registry must outlive the maintainer (or the hook must be cleared
// first with maintainer->SetPublishHook(nullptr)).
void AttachToRegistry(IncrementalMaintainer* maintainer,
                      SnapshotRegistry* registry);

}  // namespace flowcube

#endif  // FLOWCUBE_SERVE_SNAPSHOT_REGISTRY_H_
