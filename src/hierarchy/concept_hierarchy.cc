#include "hierarchy/concept_hierarchy.h"

#include "common/logging.h"

namespace flowcube {

ConceptHierarchy::ConceptHierarchy(std::string dimension_name)
    : dimension_name_(std::move(dimension_name)) {
  parent_.push_back(kInvalidNode);
  level_.push_back(0);
  name_.push_back("*");
  children_.emplace_back();
  by_name_.emplace("*", 0);
}

Result<NodeId> ConceptHierarchy::AddChild(NodeId parent,
                                          std::string_view name) {
  if (!Valid(parent)) {
    return Status::InvalidArgument("AddChild: parent id out of range");
  }
  std::string key(name);
  if (by_name_.count(key) > 0) {
    return Status::AlreadyExists("concept name already used: " + key);
  }
  const NodeId id = static_cast<NodeId>(parent_.size());
  parent_.push_back(parent);
  level_.push_back(level_[parent] + 1);
  name_.push_back(key);
  children_.emplace_back();
  children_[parent].push_back(id);
  by_name_.emplace(std::move(key), id);
  if (level_.back() > max_level_) max_level_ = level_.back();
  return id;
}

Result<NodeId> ConceptHierarchy::AddPath(const std::vector<std::string>& names) {
  if (names.empty()) {
    return Status::InvalidArgument("AddPath: empty name chain");
  }
  NodeId cur = root();
  for (const std::string& n : names) {
    auto it = by_name_.find(n);
    if (it != by_name_.end()) {
      if (parent_[it->second] != cur) {
        return Status::AlreadyExists("concept '" + n +
                                     "' exists under a different parent");
      }
      cur = it->second;
      continue;
    }
    Result<NodeId> added = AddChild(cur, n);
    if (!added.ok()) return added.status();
    cur = added.value();
  }
  return cur;
}

Result<NodeId> ConceptHierarchy::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no concept named '" + std::string(name) +
                            "' in dimension " + dimension_name_);
  }
  return it->second;
}

NodeId ConceptHierarchy::Parent(NodeId node) const {
  FC_CHECK_MSG(Valid(node), "node id " << node << " out of range in dimension '"
                                << dimension_name_ << "' (" << NodeCount()
                                << " nodes)");
  return parent_[node];
}

int ConceptHierarchy::Level(NodeId node) const {
  FC_CHECK_MSG(Valid(node), "node id " << node << " out of range in dimension '"
                                << dimension_name_ << "' (" << NodeCount()
                                << " nodes)");
  return level_[node];
}

const std::string& ConceptHierarchy::Name(NodeId node) const {
  FC_CHECK_MSG(Valid(node), "node id " << node << " out of range in dimension '"
                                << dimension_name_ << "' (" << NodeCount()
                                << " nodes)");
  return name_[node];
}

const std::vector<NodeId>& ConceptHierarchy::Children(NodeId node) const {
  FC_CHECK_MSG(Valid(node), "node id " << node << " out of range in dimension '"
                                << dimension_name_ << "' (" << NodeCount()
                                << " nodes)");
  return children_[node];
}

NodeId ConceptHierarchy::AncestorAtLevel(NodeId node, int level) const {
  FC_CHECK_MSG(Valid(node), "node id " << node << " out of range in dimension '"
                                << dimension_name_ << "' (" << NodeCount()
                                << " nodes)");
  FC_CHECK_MSG(level >= 0, "hierarchy level must be >= 0, got " << level);
  NodeId cur = node;
  while (level_[cur] > level) {
    cur = parent_[cur];
  }
  return cur;
}

bool ConceptHierarchy::IsAncestorOrSelf(NodeId ancestor, NodeId node) const {
  FC_CHECK_MSG(Valid(ancestor), "ancestor id " << ancestor
                                    << " out of range in dimension '"
                                    << dimension_name_ << "' (" << NodeCount()
                                    << " nodes)");
  FC_CHECK_MSG(Valid(node), "node id " << node << " out of range in dimension '"
                                << dimension_name_ << "' (" << NodeCount()
                                << " nodes)");
  if (level_[ancestor] > level_[node]) return false;
  return AncestorAtLevel(node, level_[ancestor]) == ancestor;
}

std::vector<NodeId> ConceptHierarchy::NodesAtLevel(int level) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < parent_.size(); ++n) {
    if (level_[n] == level) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> ConceptHierarchy::Leaves() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < parent_.size(); ++n) {
    if (children_[n].empty()) out.push_back(n);
  }
  return out;
}

}  // namespace flowcube
