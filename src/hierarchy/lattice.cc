#include "hierarchy/lattice.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace flowcube {

std::string ItemLevel::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(levels.size());
  for (int l : levels) parts.push_back(std::to_string(l));
  return "(" + StrJoin(parts, ",") + ")";
}

ItemLattice::ItemLattice(std::vector<int> max_levels)
    : max_levels_(std::move(max_levels)) {
  for (int m : max_levels_) {
    FC_CHECK_MSG(m >= 0, "dimension hierarchy depth must be >= 0, got " << m);
  }
}

ItemLevel ItemLattice::Apex() const {
  return ItemLevel{std::vector<int>(max_levels_.size(), 0)};
}

ItemLevel ItemLattice::Base() const { return ItemLevel{max_levels_}; }

std::vector<ItemLevel> ItemLattice::AllLevels() const {
  // Odometer enumeration grouped by total level sum so that more general
  // points (smaller sums) come first; within a group, lexicographic.
  std::vector<ItemLevel> all;
  ItemLevel cur = Apex();
  for (;;) {
    all.push_back(cur);
    // Advance the odometer.
    size_t i = 0;
    while (i < cur.levels.size()) {
      if (cur.levels[i] < max_levels_[i]) {
        cur.levels[i]++;
        for (size_t j = 0; j < i; ++j) cur.levels[j] = 0;
        break;
      }
      ++i;
    }
    if (i == cur.levels.size()) break;
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const ItemLevel& a, const ItemLevel& b) {
                     int sa = 0, sb = 0;
                     for (int l : a.levels) sa += l;
                     for (int l : b.levels) sb += l;
                     return sa < sb;
                   });
  return all;
}

std::vector<ItemLevel> ItemLattice::Parents(const ItemLevel& level) const {
  FC_CHECK_MSG(Contains(level),
               "item level " << level.ToString() << " is outside the lattice");
  std::vector<ItemLevel> out;
  for (size_t i = 0; i < level.levels.size(); ++i) {
    if (level.levels[i] > 0) {
      ItemLevel p = level;
      p.levels[i]--;
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<ItemLevel> ItemLattice::Children(const ItemLevel& level) const {
  FC_CHECK_MSG(Contains(level),
               "item level " << level.ToString() << " is outside the lattice");
  std::vector<ItemLevel> out;
  for (size_t i = 0; i < level.levels.size(); ++i) {
    if (level.levels[i] < max_levels_[i]) {
      ItemLevel c = level;
      c.levels[i]++;
      out.push_back(std::move(c));
    }
  }
  return out;
}

bool ItemLattice::GeneralizesOrEquals(const ItemLevel& general,
                                      const ItemLevel& specific) {
  if (general.levels.size() != specific.levels.size()) return false;
  for (size_t i = 0; i < general.levels.size(); ++i) {
    if (general.levels[i] > specific.levels[i]) return false;
  }
  return true;
}

bool ItemLattice::Contains(const ItemLevel& level) const {
  if (level.levels.size() != max_levels_.size()) return false;
  for (size_t i = 0; i < max_levels_.size(); ++i) {
    if (level.levels[i] < 0 || level.levels[i] > max_levels_[i]) return false;
  }
  return true;
}

Result<LocationCut> LocationCut::Uniform(const ConceptHierarchy& locations,
                                         int level) {
  if (level < 0) {
    return Status::InvalidArgument("LocationCut level must be >= 0");
  }
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < locations.NodeCount(); ++n) {
    const bool at_level = locations.Level(n) == level;
    const bool shallow_leaf =
        locations.Level(n) < level && locations.Children(n).empty();
    if (at_level || shallow_leaf) nodes.push_back(n);
  }
  return FromNodes(locations, nodes);
}

Result<LocationCut> LocationCut::FromNodes(const ConceptHierarchy& locations,
                                           const std::vector<NodeId>& nodes) {
  for (NodeId n : nodes) {
    if (n >= locations.NodeCount()) {
      return Status::InvalidArgument("LocationCut node id out of range");
    }
  }
  LocationCut cut;
  cut.nodes_ = nodes;
  std::sort(cut.nodes_.begin(), cut.nodes_.end());
  cut.nodes_.erase(std::unique(cut.nodes_.begin(), cut.nodes_.end()),
                   cut.nodes_.end());

  // rep_[n]: walk up from n until a cut node is found.
  cut.rep_.assign(locations.NodeCount(), kInvalidNode);
  for (NodeId n = 0; n < locations.NodeCount(); ++n) {
    NodeId cur = n;
    while (cur != kInvalidNode) {
      if (std::binary_search(cut.nodes_.begin(), cut.nodes_.end(), cur)) {
        cut.rep_[n] = cur;
        break;
      }
      cur = locations.Parent(cur);
    }
  }

  // Validate: every leaf must be covered exactly once. Walking up and taking
  // the first hit guarantees "at most one" only if no cut node is an ancestor
  // of another; check that and coverage.
  for (NodeId a : cut.nodes_) {
    for (NodeId b : cut.nodes_) {
      if (a != b && locations.IsAncestorOrSelf(a, b)) {
        return Status::InvalidArgument(
            "LocationCut nodes must not be ancestors of one another: '" +
            locations.Name(a) + "' covers '" + locations.Name(b) + "'");
      }
    }
  }
  for (NodeId leaf : locations.Leaves()) {
    if (leaf != locations.root() && cut.rep_[leaf] == kInvalidNode) {
      return Status::InvalidArgument("LocationCut does not cover leaf '" +
                                     locations.Name(leaf) + "'");
    }
  }

  cut.identity_ = true;
  for (NodeId n = 0; n < locations.NodeCount(); ++n) {
    if (cut.rep_[n] != kInvalidNode && cut.rep_[n] != n) {
      cut.identity_ = false;
      break;
    }
  }
  return cut;
}

NodeId LocationCut::Map(NodeId location) const {
  FC_CHECK_MSG(location < rep_.size(),
               "location id " << location << " out of range, hierarchy has "
                              << rep_.size() << " nodes");
  return rep_[location];
}

std::string LocationCut::ToString(const ConceptHierarchy& locations) const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (NodeId n : nodes_) names.push_back(locations.Name(n));
  return "cut{" + StrJoin(names, ",") + "}";
}

std::string PathLevel::ToString() const {
  return StrFormat("<cut=%d,dur=%d>", cut_index, duration_level);
}

}  // namespace flowcube
