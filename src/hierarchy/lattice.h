#ifndef FLOWCUBE_HIERARCHY_LATTICE_H_
#define FLOWCUBE_HIERARCHY_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "hierarchy/concept_hierarchy.h"

namespace flowcube {

// ---------------------------------------------------------------------------
// Item abstraction lattice (paper Section 4.1, "Item Lattice")
// ---------------------------------------------------------------------------

// One point of the item abstraction lattice: the hierarchy level at which
// each path-independent dimension is viewed. levels[i] == 0 means dimension
// i is fully aggregated ('*'); levels[i] == max level means the raw values.
struct ItemLevel {
  std::vector<int> levels;

  friend bool operator==(const ItemLevel& a, const ItemLevel& b) {
    return a.levels == b.levels;
  }

  // Renders as "(2,0,1)" for logs and cuboid naming.
  std::string ToString() const;
};

// The lattice of all item abstraction levels for a set of dimensions with
// given maximum hierarchy depths. A node n1 is *higher* (more general) than
// n2, written n1 <= n2 in the paper, when every dimension's level in n1 is
// <= the one in n2.
class ItemLattice {
 public:
  // `max_levels[i]` is the depth of dimension i's concept hierarchy.
  explicit ItemLattice(std::vector<int> max_levels);

  size_t num_dimensions() const { return max_levels_.size(); }
  const std::vector<int>& max_levels() const { return max_levels_; }

  // The apex (all dimensions at '*') and base (all raw) of the lattice.
  ItemLevel Apex() const;
  ItemLevel Base() const;

  // Every lattice point, enumerated in an order where parents (more general
  // points) always precede children. Size = prod(max_levels[i] + 1).
  std::vector<ItemLevel> AllLevels() const;

  // Direct parents of a point: each dimension with level > 0 decremented.
  std::vector<ItemLevel> Parents(const ItemLevel& level) const;

  // Direct children of a point: each dimension with level < max incremented.
  std::vector<ItemLevel> Children(const ItemLevel& level) const;

  // True when `general` is at-or-above `specific` in the lattice (i.e., the
  // paper's general <= specific relation holds component-wise).
  static bool GeneralizesOrEquals(const ItemLevel& general,
                                  const ItemLevel& specific);

  // True when `level` is a valid point of this lattice.
  bool Contains(const ItemLevel& level) const;

 private:
  std::vector<int> max_levels_;
};

// ---------------------------------------------------------------------------
// Path abstraction lattice (paper Section 4.1, "Path Lattice")
// ---------------------------------------------------------------------------

// A LocationCut fixes the abstraction at which stage locations are viewed:
// a set of nodes {v1..vk} of the location hierarchy such that every leaf
// location has exactly one ancestor-or-self in the set (the paper's
// "(<v1,...,vk>, tl)" tuple, Figure 5). Aggregating a path maps each stage
// location to its representative cut node and then merges consecutive equal
// representatives.
//
// Cuts can be uniform (every location rolled up to one level) — what the
// paper's experiments use — or mixed, e.g. the Figure 5 "transportation
// manager" view that keeps distribution centers and trucks while collapsing
// all store locations to "store".
class LocationCut {
 public:
  // A cut selecting all nodes at exactly `level` plus any leaves shallower
  // than `level` (so the cut always covers every leaf).
  static Result<LocationCut> Uniform(const ConceptHierarchy& locations,
                                     int level);

  // A cut from an explicit node set. Fails unless every leaf of `locations`
  // has exactly one ancestor-or-self among `nodes`.
  static Result<LocationCut> FromNodes(const ConceptHierarchy& locations,
                                       const std::vector<NodeId>& nodes);

  // Representative cut node for `location` (any node at-or-below the cut);
  // kInvalidNode when `location` lies strictly above the cut.
  NodeId Map(NodeId location) const;

  // The cut's nodes, sorted by id.
  const std::vector<NodeId>& nodes() const { return nodes_; }

  // True if this cut maps every location to itself (identity / raw view).
  bool IsIdentity() const { return identity_; }

  // Human-readable description, e.g. "cut{dist.center,truck,store,...}".
  std::string ToString(const ConceptHierarchy& locations) const;

  friend bool operator==(const LocationCut& a, const LocationCut& b) {
    return a.nodes_ == b.nodes_;
  }

 private:
  LocationCut() = default;

  std::vector<NodeId> nodes_;
  std::vector<NodeId> rep_;  // rep_[node] = cut node covering it
  bool identity_ = false;
};

// One point of the path abstraction lattice: how stage locations are viewed
// (index into a plan's list of LocationCuts) and at which level durations
// are viewed. duration_level 0 means durations are fully aggregated ('*');
// higher values select increasingly fine views (see DurationHierarchy in
// rfid/discretizer.h).
struct PathLevel {
  int cut_index = 0;
  int duration_level = 1;

  friend bool operator==(const PathLevel& a, const PathLevel& b) {
    return a.cut_index == b.cut_index && a.duration_level == b.duration_level;
  }

  std::string ToString() const;
};

}  // namespace flowcube

#endif  // FLOWCUBE_HIERARCHY_LATTICE_H_
