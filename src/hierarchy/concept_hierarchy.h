#ifndef FLOWCUBE_HIERARCHY_CONCEPT_HIERARCHY_H_
#define FLOWCUBE_HIERARCHY_CONCEPT_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace flowcube {

// Identifier of a concept inside one ConceptHierarchy. Dense: the i-th node
// added has id i. Valid ids are < ConceptHierarchy::NodeCount().
using NodeId = uint32_t;

// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

// A concept hierarchy (paper Section 4.1): a tree whose nodes are concepts
// and whose edges are is-a relationships. The most general concept '*' is
// the root at level 0; the most specific concepts are leaves. Every
// dimension of the flowcube — each path-independent item dimension, the
// stage location dimension, and the stage duration dimension — owns one
// ConceptHierarchy.
//
// Example (the paper's Figure 5, location dimension):
//
//   ConceptHierarchy loc("location");
//   NodeId transp = *loc.AddChild(loc.root(), "transportation");
//   NodeId truck  = *loc.AddChild(transp, "truck");
//   ...
//
// Node names must be unique within a hierarchy so that values in raw data
// can be resolved with Find().
class ConceptHierarchy {
 public:
  // Creates a hierarchy containing only the root concept '*'.
  // `dimension_name` labels the dimension this hierarchy describes.
  explicit ConceptHierarchy(std::string dimension_name);

  ConceptHierarchy(const ConceptHierarchy&) = default;
  ConceptHierarchy& operator=(const ConceptHierarchy&) = default;
  ConceptHierarchy(ConceptHierarchy&&) = default;
  ConceptHierarchy& operator=(ConceptHierarchy&&) = default;

  // The dimension this hierarchy describes ("product", "location", ...).
  const std::string& dimension_name() const { return dimension_name_; }

  // The root concept '*', always node 0 at level 0.
  NodeId root() const { return 0; }

  // Adds a child concept under `parent`. Fails with AlreadyExists if `name`
  // is already used in this hierarchy, or InvalidArgument if `parent` is out
  // of range.
  Result<NodeId> AddChild(NodeId parent, std::string_view name);

  // Adds a root-to-leaf chain of concepts, creating missing intermediate
  // nodes: AddPath({"clothing","outerwear","jacket"}) creates/reuses
  // "clothing" under '*', "outerwear" under it, and returns "jacket"'s id.
  // Fails if an existing name would be reattached under a different parent.
  Result<NodeId> AddPath(const std::vector<std::string>& names);

  // Finds a concept by name ('*' resolves to the root).
  Result<NodeId> Find(std::string_view name) const;

  // Number of concepts including the root.
  size_t NodeCount() const { return parent_.size(); }

  // Parent of a node; the root's parent is kInvalidNode.
  NodeId Parent(NodeId node) const;

  // Depth of a node: root is level 0, its children level 1, etc.
  int Level(NodeId node) const;

  // Concept name; the root renders as "*".
  const std::string& Name(NodeId node) const;

  // Children of a node in insertion order.
  const std::vector<NodeId>& Children(NodeId node) const;

  // The ancestor of `node` at exactly `level`, or `node` itself when its
  // level is already <= `level`. AncestorAtLevel(x, 0) == root().
  NodeId AncestorAtLevel(NodeId node, int level) const;

  // True when `ancestor` lies on the root path of `node` (or equals it).
  bool IsAncestorOrSelf(NodeId ancestor, NodeId node) const;

  // Deepest level present in the hierarchy (0 for a root-only hierarchy).
  int MaxLevel() const { return max_level_; }

  // All nodes at exactly `level`, in id order.
  std::vector<NodeId> NodesAtLevel(int level) const;

  // All leaf nodes (no children), in id order. The root counts as a leaf
  // only in an otherwise empty hierarchy.
  std::vector<NodeId> Leaves() const;

 private:
  bool Valid(NodeId node) const { return node < parent_.size(); }

  std::string dimension_name_;
  std::vector<NodeId> parent_;
  std::vector<int> level_;
  std::vector<std::string> name_;
  std::vector<std::vector<NodeId>> children_;
  std::unordered_map<std::string, NodeId> by_name_;
  int max_level_ = 0;
};

}  // namespace flowcube

#endif  // FLOWCUBE_HIERARCHY_CONCEPT_HIERARCHY_H_
