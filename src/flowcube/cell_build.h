#ifndef FLOWCUBE_FLOWCUBE_CELL_BUILD_H_
#define FLOWCUBE_FLOWCUBE_CELL_BUILD_H_

#include <vector>

#include "flowcube/flowcube.h"
#include "flowgraph/exception_miner.h"
#include "flowgraph/similarity.h"
#include "mining/mining_result.h"
#include "path/path.h"
#include "path/path_view.h"

namespace flowcube {

// Cell-construction primitives shared by the batch FlowCubeBuilder and the
// streaming IncrementalMaintainer. Both assemble cells through these exact
// functions, so an incrementally maintained cube is bit-identical to a
// from-scratch rebuild by construction rather than by coincidence.

// Maps a mined path segment (stage items) into flowgraph node space.
// Returns false when some prefix has no node in `g` (cannot happen for
// segments mined from the cell's own paths, but guards external input).
// The output pattern is sorted by node depth.
bool SegmentToPattern(const SegmentPattern& segment, const ItemCatalog& cat,
                      const FlowGraph& g, std::vector<StageCondition>* pattern);

// The parent coordinates of `cell` when dimension `dim` is generalized one
// level. Returns false when the cell has no item of that dimension (already
// at '*').
bool ParentCellKey(const Itemset& cell, size_t dim, const ItemCatalog& cat,
                   const PathSchema& schema, Itemset* parent);

// The cell coordinates of one record at item level `il`: each dimension is
// generalized to its level (levels at 0 and values above the level are
// dropped), and the resulting dimension items are sorted. `key` is an
// in/out buffer so callers can reuse its allocation across records.
void CellKeyAtLevel(const PathRecord& rec, const ItemLevel& il,
                    const ItemCatalog& cat, const PathSchema& schema,
                    Itemset* key);

// Fills one cell's measure from its member paths: support, flowgraph, and
// (when `exception_miner` is non-null) exceptions evaluated against the
// cell's frequent path segments, which must be sorted the way
// MiningResult::SegmentsForCell emits them (support desc, stages asc).
// `cell->dims` must already hold the coordinates. Returns the number of
// exceptions recorded.
size_t FillCellMeasure(const PathView& paths,
                       const std::vector<SegmentPattern>& segments,
                       const ItemCatalog& cat,
                       const ExceptionMiner* exception_miner, FlowCell* cell);

// Definition 4.4 redundancy of one cell of cuboid <il, path level pl_index>:
// true iff at least one materialized parent exists and the cell's graph is
// within `tau` of every parent's. Reads only other cuboids' finished
// graphs, so it is safe to evaluate cells of one cuboid concurrently.
bool CellIsRedundant(const FlowCube& cube, const ItemLevel& il,
                     size_t pl_index, const FlowCell& cell, double tau,
                     const SimilarityOptions& similarity);

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWCUBE_CELL_BUILD_H_
