#include "flowcube/builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/audit.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "flowcube/cell_build.h"
#include "mining/mining_result.h"
#include "path/path_aggregator.h"
#include "path/path_view.h"

namespace flowcube {

FlowCubeBuilder::FlowCubeBuilder(FlowCubeBuilderOptions options)
    : options_(options) {
  FC_CHECK_MSG(options_.min_support >= 1, "min_support must be >= 1");
}

Result<FlowCube> FlowCubeBuilder::Build(const PathDatabase& db,
                                        const FlowCubePlan& plan,
                                        FlowCubeBuildStats* stats) const {
  FlowCubeBuildStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  FC_AUDIT(AuditPathDatabase(db));
  TraceSpan build_span("flowcube.build");

  // One pool drives every phase. Each parallel loop either writes to a
  // pre-assigned slot of a shared array or accumulates into per-shard
  // partials merged at the phase boundary, so the cube and the stats are
  // bit-identical to a serial build for any thread count.
  ThreadPool pool(ResolveNumThreads(options_.num_threads));
  const size_t num_shards = pool.num_threads();
  stats->threads = num_shards;

  // --- Phase 0: transform paths into multi-level transactions.
  TraceSpan transform_span("flowcube.transform");
  Result<TransformedDatabase> transformed =
      TransformPathDatabase(db, plan.mining);
  stats->seconds_transform = transform_span.Stop();
  if (!transformed.ok()) return transformed.status();
  const TransformedDatabase& tdb = transformed.value();

  // --- Phase 1: one Shared mining run over the transformed database.
  TraceSpan mining_span("flowcube.mining");
  SharedMinerOptions mopts = options_.mining;
  mopts.min_support = options_.min_support;
  mopts.num_threads = static_cast<int>(num_shards);
  SharedMiner miner(tdb, mopts);
  SharedMiningOutput mined = miner.Run();
  stats->mining = mined.stats;
  const MiningResult result(&tdb, std::move(mined.frequent));
  stats->seconds_mining = mining_span.Stop();

  // --- Phase 2: materialize cells and their flowgraph measures.
  TraceSpan measures_span("flowcube.measures");
  FlowCube cube(plan, db.schema_ptr());
  const ItemCatalog& cat = tdb.catalog();
  const PathAggregator aggregator(db.schema_ptr());
  const ExceptionMiner exception_miner(options_.exceptions);

  // Aggregated view of every path at every materialized path level. Each
  // record aggregates independently into its own slot.
  std::vector<std::vector<Path>> agg(plan.path_levels.size());
  for (size_t p = 0; p < plan.path_levels.size(); ++p) {
    const PathLevel& level =
        plan.mining.path_levels[static_cast<size_t>(plan.path_levels[p])];
    agg[p].resize(db.size());
    pool.ParallelFor(db.size(), /*grain=*/64, [&](size_t tid) {
      agg[p][tid] = aggregator.AggregatePath(
          db.record(tid).path,
          plan.mining.cuts[static_cast<size_t>(level.cut_index)],
          level.duration_level);
    });
  }

  for (size_t i = 0; i < plan.item_levels.size(); ++i) {
    const ItemLevel& il = plan.item_levels[i];
    // The frequent cells of this item level and their path ids. Kept
    // serial: it is one cheap hash per record, and it fixes the cell order
    // every later loop follows.
    std::unordered_map<Itemset, std::vector<uint32_t>, ItemsetHash> members;
    {
      std::unordered_set<Itemset, ItemsetHash> frequent_cells;
      for (Itemset& cell : result.CellsAtLevel(il)) {
        frequent_cells.insert(std::move(cell));
      }
      members.reserve(frequent_cells.size());
      Itemset key;
      for (uint32_t tid = 0; tid < db.size(); ++tid) {
        CellKeyAtLevel(db.record(tid), il, cat, db.schema(), &key);
        if (frequent_cells.contains(key)) {
          members[key].push_back(tid);
        }
      }
    }

    // Snapshot the cell order once; every (cell, path_level) pair is an
    // independent task whose result lands in a pre-assigned slot.
    std::vector<const std::pair<const Itemset, std::vector<uint32_t>>*>
        cells;
    cells.reserve(members.size());
    for (const auto& kv : members) cells.push_back(&kv);

    const size_t num_levels = plan.path_levels.size();
    std::vector<FlowCell> built(cells.size() * num_levels);
    std::vector<size_t> shard_exceptions(num_shards, 0);
    pool.ParallelForChunks(
        built.size(), /*grain=*/1,
        [&](size_t shard, size_t begin, size_t end) {
          for (size_t task = begin; task < end; ++task) {
            const size_t p = task / cells.size();
            const auto& [key, tids] = *cells[task % cells.size()];
            // View of the cell's member paths over the shared aggregation
            // table — no per-cell copies.
            const PathView paths(agg[p], tids);

            FlowCell& cell = built[task];
            cell.dims = key;
            const std::vector<SegmentPattern> segments =
                options_.compute_exceptions
                    ? result.SegmentsForCell(key, plan.path_levels[p])
                    : std::vector<SegmentPattern>();
            shard_exceptions[shard] += FillCellMeasure(
                paths, segments, cat,
                options_.compute_exceptions ? &exception_miner : nullptr,
                &cell);
          }
        });
    for (size_t n : shard_exceptions) stats->exceptions_found += n;

    // Serial insertion in the snapshot order keeps cuboid iteration order
    // identical to the serial build's. Cardinality is known here, so every
    // cuboid is pre-sized once and never rehashes during insertion.
    for (size_t p = 0; p < num_levels; ++p) {
      Cuboid& cuboid = cube.mutable_cuboid(i, p);
      cuboid.Reserve(cells.size());
      for (size_t c = 0; c < cells.size(); ++c) {
        cuboid.Insert(std::move(built[p * cells.size() + c]));
        stats->cells_materialized++;
      }
    }
  }
  stats->seconds_measures = measures_span.Stop();

  // --- Phase 3: redundancy marking, walking cells from low abstraction to
  // high (Definition 4.4: redundant iff similar to every materialized
  // parent at the same path level). Within one cuboid every cell is
  // independent: it writes only its own flag and reads parent graphs from
  // other cuboids, which no longer change after phase 2.
  TraceSpan redundancy_span("flowcube.redundancy");
  if (options_.mark_redundant) {
    for (size_t i = 0; i < plan.item_levels.size(); ++i) {
      const ItemLevel& il = plan.item_levels[i];
      for (size_t p = 0; p < plan.path_levels.size(); ++p) {
        Cuboid& cuboid = cube.mutable_cuboid(i, p);
        std::vector<FlowCell*> cuboid_cells;
        cuboid_cells.reserve(cuboid.size());
        cuboid.ForEachMutable(
            [&cuboid_cells](FlowCell* cell) { cuboid_cells.push_back(cell); });
        std::vector<size_t> shard_marked(num_shards, 0);
        pool.ParallelForChunks(
            cuboid_cells.size(), /*grain=*/1,
            [&](size_t shard, size_t begin, size_t end) {
              for (size_t ci = begin; ci < end; ++ci) {
                FlowCell* cell = cuboid_cells[ci];
                if (CellIsRedundant(cube, il, p, *cell,
                                    options_.redundancy_tau,
                                    options_.similarity)) {
                  cell->redundant = true;
                  shard_marked[shard]++;
                }
              }
            });
        for (size_t n : shard_marked) stats->cells_marked_redundant += n;
      }
    }
  }
  stats->seconds_redundancy = redundancy_span.Stop();
  stats->seconds_total = build_span.Stop();

  {
    MetricRegistry& reg = MetricRegistry::Global();
    static Counter& m_builds = reg.counter("flowcube.build.runs");
    static Counter& m_paths = reg.counter("flowcube.build.paths");
    static Counter& m_cells = reg.counter("flowcube.build.cells_materialized");
    static Counter& m_exceptions =
        reg.counter("flowcube.build.exceptions_found");
    static Counter& m_redundant =
        reg.counter("flowcube.build.cells_marked_redundant");
    static Gauge& m_threads = reg.gauge("flowcube.build.threads");
    static Gauge& m_memory = reg.gauge("flowcube.memory_bytes");
    m_builds.Increment();
    m_paths.Add(db.size());
    m_cells.Add(stats->cells_materialized);
    m_exceptions.Add(stats->exceptions_found);
    m_redundant.Add(stats->cells_marked_redundant);
    m_threads.Set(static_cast<int64_t>(num_shards));
    m_memory.Set(static_cast<int64_t>(cube.MemoryUsage()));
  }
#if FC_AUDIT_ENABLED
  {
    FlowGraphAuditOptions graph_options;
    if (options_.compute_exceptions) {
      graph_options.min_condition_support = options_.exceptions.min_support;
    }
    FC_AUDIT(AuditFlowCube(cube, options_.min_support, graph_options));
  }
#endif
  return cube;
}

}  // namespace flowcube
