#ifndef FLOWCUBE_FLOWCUBE_PLAN_H_
#define FLOWCUBE_FLOWCUBE_PLAN_H_

#include <vector>

#include "hierarchy/lattice.h"
#include "mining/transform.h"

namespace flowcube {

// The materialization plan of a flowcube: which cuboids <Il, Pl> to
// materialize (paper Sections 4.1 and 5, "partial materialization"). The
// mining plan determines which abstraction levels are counted; item_levels
// and path_levels select the cuboids actually built from those counts.
struct FlowCubePlan {
  MiningPlan mining;

  // Item abstraction levels of the materialized cuboids.
  std::vector<ItemLevel> item_levels;

  // Path abstraction levels of the materialized cuboids, as indices into
  // mining.path_levels.
  std::vector<int> path_levels;

  // Full plan: every item level of the lattice x every mined path level.
  static Result<FlowCubePlan> Default(const PathSchema& schema);

  // Partial materialization in the style of [Han, Stefanovic, Koperski 98]
  // (paper Section 5): a minimum-interest layer, an observation layer, and
  // the chain of cuboids between them obtained by generalizing one
  // dimension at a time (in dimension order). `observation` must be at or
  // below `minimum_interest` in the lattice (i.e. more specific).
  static Result<FlowCubePlan> Layered(const PathSchema& schema,
                                      const ItemLevel& minimum_interest,
                                      const ItemLevel& observation);

  // Index of `level` in item_levels, or -1.
  int FindItemLevel(const ItemLevel& level) const;
};

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWCUBE_PLAN_H_
