#ifndef FLOWCUBE_FLOWCUBE_BUILDER_H_
#define FLOWCUBE_FLOWCUBE_BUILDER_H_

#include "common/status.h"
#include "flowcube/flowcube.h"
#include "flowgraph/exception_miner.h"
#include "flowgraph/similarity.h"
#include "mining/shared_miner.h"
#include "path/path_database.h"

namespace flowcube {

// Knobs of flowcube construction.
struct FlowCubeBuilderOptions {
  // Iceberg threshold delta: only cells aggregating at least this many
  // paths are materialized (Definition 4.5).
  uint32_t min_support = 2;

  // Candidate-pruning configuration of the Shared mining phase
  // (min_support inside is overridden by the builder's).
  SharedMinerOptions mining;

  // Whether to mine flowgraph exceptions for every cell, and with which
  // epsilon / delta (Section 3). Exception mining is the holistic part of
  // the measure (Lemma 4.3) and dominates build time on dense cubes.
  bool compute_exceptions = true;
  ExceptionMinerOptions exceptions;

  // Whether to run redundancy analysis (Definition 4.4): a cell is flagged
  // redundant when its flowgraph is within `redundancy_tau` distance of
  // every materialized parent cell's flowgraph at the same path level.
  bool mark_redundant = true;
  double redundancy_tau = 0.05;
  SimilarityOptions similarity;

  // Threads used by every construction phase (mining scans, per-cell
  // measure assembly, redundancy marking). 0 = FLOWCUBE_THREADS env,
  // falling back to hardware concurrency; 1 = serial. The built cube is
  // bit-identical for every value: parallel loops write to pre-assigned
  // slots or per-thread partials merged at phase boundaries, and cuboid
  // insertion stays serial in a fixed order.
  int num_threads = 0;
};

// Counters filled by FlowCubeBuilder::Build. Except for the timings and
// `threads`, every field is independent of the thread count.
struct FlowCubeBuildStats {
  MiningStats mining;
  size_t cells_materialized = 0;
  size_t exceptions_found = 0;
  size_t cells_marked_redundant = 0;
  // Per-phase wall times; each phase is also recorded as a trace span
  // ("flowcube.transform" / "flowcube.mining" / "flowcube.measures" /
  // "flowcube.redundancy", see common/trace.h), so histograms and the
  // timeline agree with these fields.
  double seconds_transform = 0.0;
  double seconds_mining = 0.0;
  double seconds_measures = 0.0;
  double seconds_redundancy = 0.0;
  double seconds_total = 0.0;
  // Resolved thread count the build ran with.
  size_t threads = 1;
};

// Builds a non-redundant iceberg flowcube from a path database (the overall
// algorithm of Section 5): one Shared mining run finds the frequent cells
// and the frequent path segments of every cuboid; a partition pass then
// assembles each cell's flowgraph, evaluates its exceptions against the
// mined segments, and finally redundancy is marked by walking the item
// lattice.
class FlowCubeBuilder {
 public:
  explicit FlowCubeBuilder(FlowCubeBuilderOptions options);

  // Builds the cube. `stats` may be null.
  Result<FlowCube> Build(const PathDatabase& db, const FlowCubePlan& plan,
                         FlowCubeBuildStats* stats = nullptr) const;

 private:
  FlowCubeBuilderOptions options_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWCUBE_BUILDER_H_
