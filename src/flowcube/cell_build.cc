#include "flowcube/cell_build.h"

#include <algorithm>

#include "flowgraph/builder.h"

namespace flowcube {

bool SegmentToPattern(const SegmentPattern& segment, const ItemCatalog& cat,
                      const FlowGraph& g,
                      std::vector<StageCondition>* pattern) {
  pattern->clear();
  for (ItemId id : segment.stages) {
    const auto& info = cat.StageOf(id);
    FlowNodeId node = FlowGraph::kRoot;
    for (NodeId loc : cat.trie().Locations(info.prefix)) {
      node = g.FindChild(node, loc);
      if (node == FlowGraph::kTerminate) return false;
    }
    pattern->push_back(StageCondition{node, info.duration});
  }
  std::sort(pattern->begin(), pattern->end(),
            [&g](const StageCondition& a, const StageCondition& b) {
              return g.depth(a.node) < g.depth(b.node);
            });
  return true;
}

bool ParentCellKey(const Itemset& cell, size_t dim, const ItemCatalog& cat,
                   const PathSchema& schema, Itemset* parent) {
  *parent = cell;
  for (size_t i = 0; i < parent->size(); ++i) {
    const ItemId id = (*parent)[i];
    if (cat.DimOf(id) != dim) continue;
    const ConceptHierarchy& h = schema.dimensions[dim];
    const NodeId up = h.Parent(cat.NodeOf(id));
    if (h.Level(up) == 0) {
      parent->erase(parent->begin() + static_cast<long>(i));
    } else {
      (*parent)[i] = cat.DimItem(dim, up);
    }
    std::sort(parent->begin(), parent->end());
    return true;
  }
  return false;
}

void CellKeyAtLevel(const PathRecord& rec, const ItemLevel& il,
                    const ItemCatalog& cat, const PathSchema& schema,
                    Itemset* key) {
  key->clear();
  for (size_t d = 0; d < rec.dims.size(); ++d) {
    if (il.levels[d] == 0) continue;
    const ConceptHierarchy& h = schema.dimensions[d];
    const NodeId n = h.AncestorAtLevel(rec.dims[d], il.levels[d]);
    if (h.Level(n) == 0) continue;
    key->push_back(cat.DimItem(d, n));
  }
  std::sort(key->begin(), key->end());
}

size_t FillCellMeasure(const PathView& paths,
                       const std::vector<SegmentPattern>& segments,
                       const ItemCatalog& cat,
                       const ExceptionMiner* exception_miner, FlowCell* cell) {
  cell->support = static_cast<uint32_t>(paths.size());
  cell->graph = BuildFlowGraph(paths);
  size_t exceptions = 0;
  if (exception_miner != nullptr) {
    std::vector<std::vector<StageCondition>> patterns;
    std::vector<StageCondition> pattern;
    for (const SegmentPattern& seg : segments) {
      if (SegmentToPattern(seg, cat, cell->graph, &pattern)) {
        patterns.push_back(pattern);
      }
    }
    for (FlowException& e :
         exception_miner->Mine(cell->graph, paths, patterns)) {
      cell->graph.AddException(std::move(e));
      exceptions++;
    }
  }
  // The measure is final: freeze it into the columnar form. Every graph
  // resident in a cube — batch-built, stream-rebuilt, or restored — is
  // sealed; only accumulation-side graphs stay mutable.
  cell->graph.Seal();
  return exceptions;
}

bool CellIsRedundant(const FlowCube& cube, const ItemLevel& il,
                     size_t pl_index, const FlowCell& cell, double tau,
                     const SimilarityOptions& similarity) {
  const FlowCubePlan& plan = cube.plan();
  const ItemCatalog& cat = cube.catalog();
  int parents_found = 0;
  for (size_t d = 0; d < il.levels.size(); ++d) {
    if (il.levels[d] == 0) continue;
    ItemLevel parent_level = il;
    parent_level.levels[d]--;
    const int pil = plan.FindItemLevel(parent_level);
    if (pil < 0) continue;
    Itemset parent_key;
    if (!ParentCellKey(cell.dims, d, cat, cube.schema(), &parent_key)) {
      continue;
    }
    const FlowCell* parent =
        cube.cuboid(static_cast<size_t>(pil), pl_index).Find(parent_key);
    if (parent == nullptr) continue;
    parents_found++;
    if (FlowGraphDistance(cell.graph, parent->graph, similarity) > tau) {
      return false;
    }
  }
  return parents_found > 0;
}

}  // namespace flowcube
