#ifndef FLOWCUBE_FLOWCUBE_FLOWCUBE_H_
#define FLOWCUBE_FLOWCUBE_FLOWCUBE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sealed_column.h"
#include "flowcube/plan.h"
#include "flowgraph/flowgraph.h"
#include "mining/item_catalog.h"
#include "mining/transaction.h"

namespace flowcube {

// One materialized cell: its coordinates (the sorted dimension items
// identifying it — dimensions at '*' are absent), the number of paths it
// aggregates, and its flowgraph measure.
struct FlowCell {
  Itemset dims;
  uint32_t support = 0;
  FlowGraph graph;
  // Set by redundancy analysis: the cell's flowgraph is within tau of every
  // parent's (Definition 4.4) and can be dropped without information loss.
  bool redundant = false;
};

// One cuboid <Il, Pl>: all materialized cells at one item abstraction level
// and one path abstraction level.
//
// Cells live in one dense std::vector (scan-friendly, no per-cell map node
// allocations); point lookups go through a separate open-addressing index
// of cell positions (power-of-two capacity, linear probing, backward-shift
// deletion). Erase swaps the removed cell with the last one, so cell
// pointers are only stable between mutations — callers must not hold a
// FlowCell* across Insert/Erase.
//
// The slot index is a SealedColumn: for cuboids assembled by the store
// loader (src/store) it borrows the canonical slot table straight from the
// checkpoint mapping instead of rebuilding it, and any attempt to mutate
// such a cuboid (Insert/Erase) FC_CHECKs — mapped cubes are immutable.
class Cuboid {
 public:
  Cuboid(ItemLevel item_level, int path_level)
      : item_level_(std::move(item_level)), path_level_(path_level) {}

  const ItemLevel& item_level() const { return item_level_; }
  int path_level() const { return path_level_; }

  size_t size() const { return cells_.size(); }

  // Pre-sizes the cell vector and the index for `n` cells, so a build of
  // known cardinality never rehashes.
  void Reserve(size_t n);

  // The cell with the given coordinates, or nullptr.
  const FlowCell* Find(const Itemset& dims) const;
  FlowCell* FindMutable(const Itemset& dims);

  // Inserts a cell (coordinates must be new).
  void Insert(FlowCell cell);

  // Removes a cell; returns whether it existed.
  bool Erase(const Itemset& dims);

  // Iteration over cells (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const FlowCell& cell : cells_) fn(cell);
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (FlowCell& cell : cells_) fn(&cell);
  }

  // Canonical cell order: pointers to every cell, sorted by coordinates.
  // All order-sensitive consumers (cube dumps, checkpoint payloads, audit
  // walks) share this one definition.
  std::vector<const FlowCell*> SortedCells() const;

  // Bytes owned by this cuboid: sizeof(*this) plus the cell vector, the
  // lookup index, and each cell's coordinates and flowgraph heap.
  size_t MemoryUsage() const;

  // Slot capacity needed for `n` cells at the max load factor. Exposed for
  // the store writer, which emits the canonical slot table (sorted cell
  // order at exactly this capacity) so the loader can borrow it verbatim.
  static size_t SlotCapacityFor(size_t n);

  // Index slot value meaning "empty".
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

 private:
  // Store loader (src/store/cube_codec.cc): installs cells and a borrowed
  // slot table assembled from a checkpoint mapping.
  friend struct CuboidStoreAccess;

  // Slot holding `dims`, or the empty slot where it would go. Requires a
  // non-empty slot table.
  size_t ProbeFor(const Itemset& dims) const;
  // Grows the slot table to `capacity` (power of two) and reindexes.
  void Rehash(size_t capacity);

  ItemLevel item_level_;
  int path_level_;
  std::vector<FlowCell> cells_;
  // Open-addressing index: slot -> position in cells_, kEmptySlot if free.
  // Owned and rebuilt on mutation for live cuboids; borrowed read-only from
  // the mapping for store-loaded cuboids.
  SealedColumn<uint32_t> slots_;
};

// The flowcube (paper Definition 4.1): a collection of cuboids, each
// grouping the path database's records into cells at an item abstraction
// level with paths aggregated to a path abstraction level, measured by
// flowgraphs. Built by FlowCubeBuilder; queried directly or through
// FlowCubeQuery.
class FlowCube {
 public:
  // `schema` is the path database's schema; the cube derives its own item
  // catalog from it (dimension-item ids are deterministic given a schema,
  // so they agree with the ids the mining phase used).
  FlowCube(FlowCubePlan plan, SchemaPtr schema);

  const FlowCubePlan& plan() const { return plan_; }
  const PathSchema& schema() const { return *schema_; }
  SchemaPtr schema_ptr() const { return schema_; }

  // Decodes cell coordinates (FlowCell::dims) into dimension values.
  const ItemCatalog& catalog() const { return *catalog_; }

  // Renders a cell's coordinates like "(outerwear, nike)"; dimensions at
  // '*' print as "*".
  std::string CellName(const Itemset& dims) const;

  size_t num_cuboids() const { return cuboids_.size(); }

  // Cuboid by plan indices (il_index into plan.item_levels, pl_index into
  // plan.path_levels).
  const Cuboid& cuboid(size_t il_index, size_t pl_index) const;
  Cuboid& mutable_cuboid(size_t il_index, size_t pl_index);

  // Cuboid by levels; nullptr when not materialized. `path_level` is an
  // index into plan().mining.path_levels.
  const Cuboid* FindCuboid(const ItemLevel& item_level, int path_level) const;

  // Total number of materialized cells across all cuboids.
  size_t TotalCells() const;

  // Number of cells currently flagged redundant.
  size_t RedundantCells() const;

  // Drops every redundant cell, turning this into the paper's
  // *non-redundant flowcube*. Returns the number of cells removed.
  size_t EraseRedundant();

  // Bytes of cell storage across all cuboids (cells, indexes, flowgraphs).
  // The shared catalog and plan are excluded — the metric tracks the data
  // the storage refactor owns. Surfaced as the flowcube.memory_bytes gauge.
  size_t MemoryUsage() const;

  // Deep copy: an independent cube holding identical cells (coordinates,
  // supports, flags, flowgraphs — sealed form included). The schema stays
  // shared (it is immutable). This is what the serving layer publishes as
  // an immutable snapshot after each maintenance batch (DESIGN.md §14);
  // the clone dumps byte-identically to the source.
  FlowCube Clone() const;

  template <typename Fn>
  void ForEachCuboid(Fn&& fn) const {
    for (const auto& c : cuboids_) fn(*c);
  }
  template <typename Fn>
  void ForEachCuboidMutable(Fn&& fn) {
    for (auto& c : cuboids_) fn(c.get());
  }

 private:
  size_t Index(size_t il_index, size_t pl_index) const;

  FlowCubePlan plan_;
  SchemaPtr schema_;
  std::unique_ptr<ItemCatalog> catalog_;
  // Row-major: cuboids_[il * plan_.path_levels.size() + pl].
  std::vector<std::unique_ptr<Cuboid>> cuboids_;
};

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWCUBE_FLOWCUBE_H_
