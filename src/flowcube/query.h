#ifndef FLOWCUBE_FLOWCUBE_QUERY_H_
#define FLOWCUBE_FLOWCUBE_QUERY_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "flowcube/flowcube.h"
#include "flowgraph/similarity.h"

namespace flowcube {

// Per-query-object usage counters (mirrored into the global MetricRegistry
// under "query.*"). Snapshot via FlowCubeQuery::stats().
struct QueryStats {
  uint64_t lookups = 0;    // Cell() resolutions attempted
  uint64_t hits = 0;       // ... that found a materialized cell
  uint64_t misses = 0;     // ... that did not
  uint64_t fallback_walks = 0;  // ancestor steps taken by CellOrAncestor
  uint64_t rollups = 0;
  uint64_t drilldowns = 0;
  uint64_t slices = 0;
  uint64_t merges = 0;
};

// A resolved reference to a materialized cell: the cell plus its position
// in the cube (indices into plan().item_levels / plan().path_levels).
struct CellRef {
  const FlowCell* cell = nullptr;
  size_t il_index = 0;
  size_t pl_index = 0;
};

// Resolved coordinates of a cell inside a cube's plan: the item-level index
// plus the sorted dimension-item key. Resolution touches only the cube's
// schema, catalog, and plan — never its cells — so it works on an empty
// "skeleton" cube, which is how the shard coordinator resolves names
// without holding any materialized data.
struct CellCoords {
  size_t il_index = 0;
  Itemset key;
};

// Resolves dimension value names ("*" = top level) to cell coordinates.
// Produces exactly the error statuses FlowCubeQuery::Cell surfaces for
// shape, name, and unmaterialized-cuboid problems, in the same precedence,
// so resolution can run coordinator-side with unchanged error semantics.
Result<CellCoords> ResolveCellCoords(const FlowCube& cube,
                                     const std::vector<std::string>& values,
                                     size_t pl_index);

// The breadth-first one-dimension-generalization closure of `values`: the
// original vector first, then candidates in exactly the order
// FlowCubeQuery::CellOrAncestor probes them (frontier expanded with
// dimensions in index order, duplicates pruned). The first materialized
// candidate in this list IS the CellOrAncestor answer, which lets the shard
// coordinator fan the whole candidate list out in a single round per shard.
Result<std::vector<std::vector<std::string>>> EnumerateAncestorCandidates(
    const PathSchema& schema, const std::vector<std::string>& values);

// A typical path through a cell's flowgraph: a full root-to-termination
// location sequence with the most likely duration at each stage, and the
// probability the model assigns to that location sequence.
struct TypicalPath {
  Path path;
  double probability = 0.0;
};

// OLAP-style query surface over a materialized flowcube: point lookups by
// value names, roll-up / drill-down along item dimensions, slicing a
// cuboid, extracting typical paths, and comparing cells' flowgraphs. All
// operations are read-only.
class FlowCubeQuery {
 public:
  // `cube` must outlive the query object.
  explicit FlowCubeQuery(const FlowCube* cube);

  // Pinning form for snapshot queries: shares ownership of `cube`, so a
  // query object built from a published snapshot keeps that epoch's cube
  // alive for its own lifetime (serve/snapshot_registry.h).
  explicit FlowCubeQuery(std::shared_ptr<const FlowCube> cube);

  // Resolves a cell by dimension value names, one per dimension ("*" for a
  // dimension at its top level). The item level is inferred from the named
  // values' hierarchy levels; `pl_index` indexes plan().path_levels.
  Result<CellRef> Cell(const std::vector<std::string>& values,
                       size_t pl_index = 0) const;

  // Like Cell, but when the exact cell is not materialized (below the
  // iceberg threshold, or its cuboid is not in the plan), walks up the item
  // lattice to the nearest materialized ancestor: candidate coordinates are
  // explored breadth-first over one-dimension generalizations, dimensions
  // in index order, so the returned ancestor is deterministic and minimal
  // in generalization distance. Each candidate probed beyond the first
  // counts as one fallback walk step in QueryStats / "query.fallback_walks".
  Result<CellRef> CellOrAncestor(const std::vector<std::string>& values,
                                 size_t pl_index = 0) const;

  // The parent cell with dimension `dim` generalized one hierarchy level
  // (to '*' when it was at level 1). Fails when that cuboid or cell is not
  // materialized.
  Result<CellRef> RollUp(const CellRef& ref, size_t dim) const;

  // All materialized child cells with dimension `dim` specialized one
  // hierarchy level. Empty when the child cuboid is not materialized or no
  // child cell passed the iceberg threshold.
  std::vector<CellRef> DrillDown(const CellRef& ref, size_t dim) const;

  // All cells of cuboid (il_index, pl_index) whose dimension `dim` has the
  // value named `value`.
  Result<std::vector<CellRef>> Slice(size_t il_index, size_t pl_index,
                                     size_t dim,
                                     const std::string& value) const;

  // The k most probable root-to-termination paths of a cell's flowgraph
  // (paper query 1: "the most typical paths, with average duration at each
  // stage").
  std::vector<TypicalPath> TypicalPaths(const CellRef& ref, size_t k) const;

  // Distance between two cells' flowgraphs (paper query 3 style
  // contrasting).
  double Compare(const CellRef& a, const CellRef& b,
                 const SimilarityOptions& options = {}) const;

  // Lemma 4.2 in action: reconstructs `ref`'s duration/transition
  // distributions by algebraically merging its drill-down children along
  // `dim`, without touching the path database. Fails with
  // FailedPrecondition when the children do not cover the parent (some
  // child fell below the iceberg threshold), since the merged counts would
  // be incomplete. The result carries no exceptions (Lemma 4.3).
  Result<FlowGraph> MergeChildren(const CellRef& ref, size_t dim) const;

  // Usage counters accumulated by this query object (all methods are
  // const and thread-safe; counters are relaxed atomics).
  QueryStats stats() const;

 private:
  // Set only by the pinning constructor; cube_ points into it then.
  std::shared_ptr<const FlowCube> owned_;
  const FlowCube* cube_;

  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> fallback_walks_{0};
  mutable std::atomic<uint64_t> rollups_{0};
  mutable std::atomic<uint64_t> drilldowns_{0};
  mutable std::atomic<uint64_t> slices_{0};
  mutable std::atomic<uint64_t> merges_{0};
};

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWCUBE_QUERY_H_
