#include "flowcube/dump.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace flowcube {
namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf, static_cast<size_t>(std::min<int>(
                       n, static_cast<int>(sizeof(buf)) - 1)));
}

void AppendItemset(std::string* out, const Itemset& items) {
  out->push_back('[');
  for (size_t i = 0; i < items.size(); ++i) {
    AppendF(out, i == 0 ? "%" PRIu32 : ",%" PRIu32, items[i]);
  }
  out->push_back(']');
}

void AppendCondition(std::string* out,
                     const std::vector<StageCondition>& condition) {
  out->push_back('{');
  for (size_t i = 0; i < condition.size(); ++i) {
    AppendF(out,
            i == 0 ? "(%" PRIu32 ",%" PRId64 ")" : " (%" PRIu32 ",%" PRId64 ")",
            condition[i].node, condition[i].duration);
  }
  out->push_back('}');
}

void AppendGraph(std::string* out, const FlowGraph& g) {
  AppendF(out, "  graph nodes=%zu total_paths=%" PRIu32 "\n", g.num_nodes(),
          g.total_paths());
  for (FlowNodeId n = 0; n < g.num_nodes(); ++n) {
    AppendF(out,
            "  node %" PRIu32 " loc=%" PRIu32 " parent=%" PRIu32
            " depth=%d paths=%" PRIu32 " term=%" PRIu32 " durs=",
            n, g.location(n), g.parent(n), g.depth(n), g.path_count(n),
            g.terminate_count(n));
    for (const auto& [d, c] : g.duration_counts(n)) {
      AppendF(out, "(%" PRId64 ":%" PRIu32 ")", d, c);
    }
    out->append(" children=");
    for (FlowNodeId c : g.children(n)) AppendF(out, "%" PRIu32 " ", c);
    out->push_back('\n');
  }
  for (const FlowException& e : g.exceptions()) {
    AppendF(out, "  exc kind=%d node=%" PRIu32, static_cast<int>(e.kind),
            e.node);
    if (e.kind == FlowException::Kind::kTransition) {
      AppendF(out, " target=%" PRIu32, e.transition_target);
    } else {
      AppendF(out, " dur=%" PRId64, e.duration_value);
    }
    // %.17g round-trips doubles exactly, so equal dumps mean bitwise-equal
    // probabilities.
    AppendF(out, " p_glob=%.17g p_cond=%.17g support=%" PRIu32 " cond=",
            e.global_probability, e.conditional_probability,
            e.condition_support);
    AppendCondition(out, e.condition);
    out->push_back('\n');
  }
}

}  // namespace

std::string DumpFlowGraph(const FlowGraph& graph) {
  std::string out;
  AppendGraph(&out, graph);
  return out;
}

std::string DumpFlowCell(const FlowCell& cell) {
  std::string out = "cell dims=";
  AppendItemset(&out, cell.dims);
  AppendF(&out, " support=%" PRIu32 " redundant=%d\n", cell.support,
          cell.redundant ? 1 : 0);
  AppendGraph(&out, cell.graph);
  return out;
}

std::string DumpFlowCube(const FlowCube& cube) {
  std::string out;
  AppendF(&out, "flowcube cuboids=%zu cells=%zu\n", cube.num_cuboids(),
          cube.TotalCells());
  const FlowCubePlan& plan = cube.plan();
  for (size_t i = 0; i < plan.item_levels.size(); ++i) {
    for (size_t p = 0; p < plan.path_levels.size(); ++p) {
      const Cuboid& cuboid = cube.cuboid(i, p);
      out.append("cuboid il=[");
      const ItemLevel& il = cuboid.item_level();
      for (size_t d = 0; d < il.levels.size(); ++d) {
        AppendF(&out, d == 0 ? "%d" : ",%d", il.levels[d]);
      }
      AppendF(&out, "] pl=%d cells=%zu\n", cuboid.path_level(),
              cuboid.size());
      // Canonical cell order: the dump is independent of insertion order.
      for (const FlowCell* cell : cuboid.SortedCells()) {
        out.append(DumpFlowCell(*cell));
      }
    }
  }
  return out;
}

}  // namespace flowcube
