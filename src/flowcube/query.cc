#include "flowcube/query.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "flowgraph/merge.h"

namespace flowcube {
namespace {

// Enumerates all root-to-termination paths of `g` by depth-first search,
// carrying the transition-probability product.
void EnumeratePaths(const FlowGraph& g, FlowNodeId node, Path* prefix,
                    double prob, std::vector<TypicalPath>* out) {
  const double term = g.TransitionProbability(node, FlowGraph::kTerminate);
  if (node != FlowGraph::kRoot && term > 0.0) {
    out->push_back(TypicalPath{*prefix, prob * term});
  }
  for (FlowNodeId c : g.children(node)) {
    // Most likely duration at the child: one linear scan over the node's
    // flat (duration, count) span. Entries are sorted by duration, so ties
    // resolve to the smallest duration.
    Duration best = kAnyDuration;
    uint32_t best_count = 0;
    for (const DurationCount& dc : g.duration_counts(c)) {
      if (dc.count > best_count) {
        best = dc.duration;
        best_count = dc.count;
      }
    }
    prefix->stages.push_back(Stage{g.location(c), best});
    EnumeratePaths(g, c, prefix, prob * g.TransitionProbability(node, c), out);
    prefix->stages.pop_back();
  }
}

}  // namespace

Result<CellCoords> ResolveCellCoords(const FlowCube& cube,
                                     const std::vector<std::string>& values,
                                     size_t pl_index) {
  const PathSchema& schema = cube.schema();
  if (values.size() != schema.num_dimensions()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu dimension values, got %zu",
                  schema.num_dimensions(), values.size()));
  }
  if (pl_index >= cube.plan().path_levels.size()) {
    return Status::InvalidArgument("path level index out of range");
  }
  ItemLevel level;
  level.levels.resize(values.size(), 0);
  CellCoords coords;
  for (size_t d = 0; d < values.size(); ++d) {
    if (values[d] == "*") continue;
    Result<NodeId> node = schema.dimensions[d].Find(values[d]);
    if (!node.ok()) return node.status();
    level.levels[d] = schema.dimensions[d].Level(node.value());
    coords.key.push_back(cube.catalog().DimItem(d, node.value()));
  }
  std::sort(coords.key.begin(), coords.key.end());
  const int il = cube.plan().FindItemLevel(level);
  if (il < 0) {
    return Status::NotFound("cuboid at item level " + level.ToString() +
                            " is not materialized");
  }
  coords.il_index = static_cast<size_t>(il);
  return coords;
}

Result<std::vector<std::vector<std::string>>> EnumerateAncestorCandidates(
    const PathSchema& schema, const std::vector<std::string>& values) {
  // Mirrors CellOrAncestor's frontier exactly, just without the probing:
  // every candidate is expanded, so the list is the full closure in probe
  // order (expansion of a candidate never reorders candidates before it).
  std::vector<std::vector<std::string>> out;
  std::deque<std::vector<std::string>> frontier{values};
  std::set<std::vector<std::string>> seen{values};
  while (!frontier.empty()) {
    std::vector<std::string> v = std::move(frontier.front());
    frontier.pop_front();
    for (size_t d = 0; d < v.size(); ++d) {
      if (v[d] == "*") continue;
      const Result<NodeId> node = schema.dimensions[d].Find(v[d]);
      if (!node.ok()) return node.status();
      const NodeId up = schema.dimensions[d].Parent(node.value());
      std::vector<std::string> parent = v;
      parent[d] = schema.dimensions[d].Level(up) == 0
                      ? "*"
                      : schema.dimensions[d].Name(up);
      if (seen.insert(parent).second) frontier.push_back(std::move(parent));
    }
    out.push_back(std::move(v));
  }
  return out;
}

FlowCubeQuery::FlowCubeQuery(const FlowCube* cube) : cube_(cube) {
  FC_CHECK(cube_ != nullptr);
}

FlowCubeQuery::FlowCubeQuery(std::shared_ptr<const FlowCube> cube)
    : owned_(std::move(cube)), cube_(owned_.get()) {
  FC_CHECK(cube_ != nullptr);
}

Result<CellRef> FlowCubeQuery::Cell(const std::vector<std::string>& values,
                                    size_t pl_index) const {
  static Counter& m_lookups = MetricRegistry::Global().counter("query.lookups");
  static Counter& m_hits = MetricRegistry::Global().counter("query.hits");
  static Counter& m_misses = MetricRegistry::Global().counter("query.misses");
  m_lookups.Increment();
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const auto miss = [&] {
    m_misses.Increment();
    misses_.fetch_add(1, std::memory_order_relaxed);
  };
  Result<CellCoords> coords = ResolveCellCoords(*cube_, values, pl_index);
  if (!coords.ok()) {
    miss();
    return coords.status();
  }
  const FlowCell* cell =
      cube_->cuboid(coords->il_index, pl_index).Find(coords->key);
  if (cell == nullptr) {
    miss();
    return Status::NotFound("cell " + cube_->CellName(coords->key) +
                            " is not materialized (below the iceberg "
                            "threshold or pruned)");
  }
  m_hits.Increment();
  hits_.fetch_add(1, std::memory_order_relaxed);
  return CellRef{cell, coords->il_index, pl_index};
}

Result<CellRef> FlowCubeQuery::CellOrAncestor(
    const std::vector<std::string>& values, size_t pl_index) const {
  static Counter& m_walks =
      MetricRegistry::Global().counter("query.fallback_walks");
  const PathSchema& schema = cube_->schema();
  // Breadth-first over one-dimension generalizations: the frontier at
  // distance k holds every ancestor k roll-ups away, so the first hit is a
  // nearest materialized ancestor, and visiting dimensions in index order
  // makes the tie-break deterministic.
  std::deque<std::vector<std::string>> frontier{values};
  std::set<std::vector<std::string>> seen{values};
  bool first = true;
  while (!frontier.empty()) {
    const std::vector<std::string> v = std::move(frontier.front());
    frontier.pop_front();
    if (!first) {
      m_walks.Increment();
      fallback_walks_.fetch_add(1, std::memory_order_relaxed);
    }
    Result<CellRef> ref = Cell(v, pl_index);
    if (ref.ok()) return ref;
    // Only "not materialized" is walkable; bad names or shape errors on
    // the original query surface immediately.
    if (ref.status().code() != Status::Code::kNotFound) return ref.status();
    first = false;
    for (size_t d = 0; d < v.size(); ++d) {
      if (v[d] == "*") continue;
      const Result<NodeId> node = schema.dimensions[d].Find(v[d]);
      if (!node.ok()) return node.status();
      const NodeId up = schema.dimensions[d].Parent(node.value());
      std::vector<std::string> parent = v;
      parent[d] = schema.dimensions[d].Level(up) == 0
                      ? "*"
                      : schema.dimensions[d].Name(up);
      if (seen.insert(parent).second) frontier.push_back(std::move(parent));
    }
  }
  return Status::NotFound(
      "no materialized ancestor (not even the apex) for the requested cell");
}

Result<CellRef> FlowCubeQuery::RollUp(const CellRef& ref, size_t dim) const {
  static Counter& m_rollups = MetricRegistry::Global().counter("query.rollups");
  m_rollups.Increment();
  rollups_.fetch_add(1, std::memory_order_relaxed);
  const ItemLevel& il = cube_->plan().item_levels[ref.il_index];
  if (dim >= il.levels.size()) {
    return Status::InvalidArgument("dimension index out of range");
  }
  if (il.levels[dim] == 0) {
    return Status::FailedPrecondition("dimension already at '*'");
  }
  ItemLevel parent_level = il;
  parent_level.levels[dim]--;
  const int pil = cube_->plan().FindItemLevel(parent_level);
  if (pil < 0) {
    return Status::NotFound("parent cuboid not materialized");
  }
  const ItemCatalog& cat = cube_->catalog();
  const PathSchema& schema = cube_->schema();
  Itemset key;
  for (ItemId id : ref.cell->dims) {
    if (cat.DimOf(id) != dim) {
      key.push_back(id);
      continue;
    }
    const NodeId up = schema.dimensions[dim].Parent(cat.NodeOf(id));
    if (schema.dimensions[dim].Level(up) > 0) {
      key.push_back(cat.DimItem(dim, up));
    }
  }
  std::sort(key.begin(), key.end());
  const FlowCell* cell =
      cube_->cuboid(static_cast<size_t>(pil), ref.pl_index).Find(key);
  if (cell == nullptr) {
    return Status::NotFound("parent cell not materialized");
  }
  return CellRef{cell, static_cast<size_t>(pil), ref.pl_index};
}

std::vector<CellRef> FlowCubeQuery::DrillDown(const CellRef& ref,
                                              size_t dim) const {
  static Counter& m_drilldowns =
      MetricRegistry::Global().counter("query.drilldowns");
  m_drilldowns.Increment();
  drilldowns_.fetch_add(1, std::memory_order_relaxed);
  std::vector<CellRef> out;
  const ItemLevel& il = cube_->plan().item_levels[ref.il_index];
  if (dim >= il.levels.size()) return out;
  ItemLevel child_level = il;
  child_level.levels[dim]++;
  const int cil = cube_->plan().FindItemLevel(child_level);
  if (cil < 0) return out;

  const ItemCatalog& cat = cube_->catalog();
  const Cuboid& child_cuboid =
      cube_->cuboid(static_cast<size_t>(cil), ref.pl_index);
  const PathSchema& schema = cube_->schema();
  child_cuboid.ForEach([&](const FlowCell& cell) {
    // Check that generalizing `dim` in the child's coordinates yields the
    // reference cell's coordinates.
    Itemset rolled;
    for (ItemId id : cell.dims) {
      if (cat.DimOf(id) != dim) {
        rolled.push_back(id);
        continue;
      }
      const NodeId up = schema.dimensions[dim].Parent(cat.NodeOf(id));
      if (schema.dimensions[dim].Level(up) > 0) {
        rolled.push_back(cat.DimItem(dim, up));
      }
    }
    std::sort(rolled.begin(), rolled.end());
    if (rolled == ref.cell->dims) {
      out.push_back(CellRef{&cell, static_cast<size_t>(cil), ref.pl_index});
    }
  });
  std::sort(out.begin(), out.end(), [](const CellRef& a, const CellRef& b) {
    return a.cell->dims < b.cell->dims;
  });
  return out;
}

Result<std::vector<CellRef>> FlowCubeQuery::Slice(
    size_t il_index, size_t pl_index, size_t dim,
    const std::string& value) const {
  static Counter& m_slices = MetricRegistry::Global().counter("query.slices");
  m_slices.Increment();
  slices_.fetch_add(1, std::memory_order_relaxed);
  if (il_index >= cube_->plan().item_levels.size() ||
      pl_index >= cube_->plan().path_levels.size()) {
    return Status::InvalidArgument("cuboid index out of range");
  }
  const PathSchema& schema = cube_->schema();
  if (dim >= schema.num_dimensions()) {
    return Status::InvalidArgument("dimension index out of range");
  }
  Result<NodeId> node = schema.dimensions[dim].Find(value);
  if (!node.ok()) return node.status();
  const ItemId want = cube_->catalog().DimItem(dim, node.value());

  std::vector<CellRef> out;
  const Cuboid& cuboid = cube_->cuboid(il_index, pl_index);
  cuboid.ForEach([&](const FlowCell& cell) {
    if (std::binary_search(cell.dims.begin(), cell.dims.end(), want)) {
      out.push_back(CellRef{&cell, il_index, pl_index});
    }
  });
  std::sort(out.begin(), out.end(), [](const CellRef& a, const CellRef& b) {
    return a.cell->dims < b.cell->dims;
  });
  return out;
}

std::vector<TypicalPath> FlowCubeQuery::TypicalPaths(const CellRef& ref,
                                                     size_t k) const {
  std::vector<TypicalPath> all;
  Path prefix;
  EnumeratePaths(ref.cell->graph, FlowGraph::kRoot, &prefix, 1.0, &all);
  std::sort(all.begin(), all.end(), [](const TypicalPath& a,
                                       const TypicalPath& b) {
    return a.probability > b.probability;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

double FlowCubeQuery::Compare(const CellRef& a, const CellRef& b,
                              const SimilarityOptions& options) const {
  return FlowGraphDistance(a.cell->graph, b.cell->graph, options);
}

Result<FlowGraph> FlowCubeQuery::MergeChildren(const CellRef& ref,
                                               size_t dim) const {
  static Counter& m_merges = MetricRegistry::Global().counter("query.merges");
  m_merges.Increment();
  merges_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<CellRef> children = DrillDown(ref, dim);
  uint32_t covered = 0;
  for (const CellRef& c : children) covered += c.cell->support;
  if (covered != ref.cell->support) {
    return Status::FailedPrecondition(StrFormat(
        "children cover %u of %u paths (iceberg pruning); the algebraic "
        "merge would be incomplete",
        covered, ref.cell->support));
  }
  std::vector<const FlowGraph*> graphs;
  graphs.reserve(children.size());
  for (const CellRef& c : children) graphs.push_back(&c.cell->graph);
  return MergeFlowGraphs(graphs);
}

QueryStats FlowCubeQuery::stats() const {
  QueryStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.fallback_walks = fallback_walks_.load(std::memory_order_relaxed);
  s.rollups = rollups_.load(std::memory_order_relaxed);
  s.drilldowns = drilldowns_.load(std::memory_order_relaxed);
  s.slices = slices_.load(std::memory_order_relaxed);
  s.merges = merges_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace flowcube
