#ifndef FLOWCUBE_FLOWCUBE_DUMP_H_
#define FLOWCUBE_FLOWCUBE_DUMP_H_

#include <string>

#include "flowcube/flowcube.h"

namespace flowcube {

// Canonical text serialization of a full flowcube: every cuboid with its
// cells (sorted by coordinates), each cell's support, redundancy flag,
// complete flowgraph (nodes, counts, duration histograms) and exception
// list. Two cubes over the same database serialize byte-identically iff
// they hold the same cells, measures, exceptions, and flags — this is the
// contract the parallel builder is tested against (serial and N-thread
// builds must produce the same dump), and a convenient golden-file /
// debugging format.
std::string DumpFlowCube(const FlowCube& cube);

// One cell's canonical serialization (dims, support, flags, graph,
// exceptions); exposed for targeted diffing.
std::string DumpFlowCell(const FlowCell& cell);

// Just the flowgraph block of the cell dump (the "  graph ..."/"  node ..."
// lines plus exceptions). Node tables are rendered in id order, so two
// graphs dump identically iff their numbered representations match — pass
// graphs through FlowGraph::Canonical() first to compare them structurally.
// Used by the shard coordinator to render merged measures.
std::string DumpFlowGraph(const FlowGraph& graph);

}  // namespace flowcube

#endif  // FLOWCUBE_FLOWCUBE_DUMP_H_
