#include "flowcube/plan.h"

#include "common/logging.h"

namespace flowcube {
namespace {

std::vector<int> HierarchyDepths(const PathSchema& schema) {
  std::vector<int> depths;
  depths.reserve(schema.num_dimensions());
  for (const ConceptHierarchy& h : schema.dimensions) {
    depths.push_back(h.MaxLevel());
  }
  return depths;
}

}  // namespace

Result<FlowCubePlan> FlowCubePlan::Default(const PathSchema& schema) {
  FlowCubePlan plan;
  Result<MiningPlan> mining = MiningPlan::Default(schema);
  if (!mining.ok()) return mining.status();
  plan.mining = std::move(mining.value());

  plan.item_levels = ItemLattice(HierarchyDepths(schema)).AllLevels();
  for (int pl = 0; pl < static_cast<int>(plan.mining.path_levels.size());
       ++pl) {
    plan.path_levels.push_back(pl);
  }
  return plan;
}

Result<FlowCubePlan> FlowCubePlan::Layered(const PathSchema& schema,
                                           const ItemLevel& minimum_interest,
                                           const ItemLevel& observation) {
  const ItemLattice lattice(HierarchyDepths(schema));
  if (!lattice.Contains(minimum_interest) || !lattice.Contains(observation)) {
    return Status::InvalidArgument("layer outside the item lattice");
  }
  if (!ItemLattice::GeneralizesOrEquals(minimum_interest, observation)) {
    return Status::InvalidArgument(
        "the minimum-interest layer must generalize the observation layer");
  }

  FlowCubePlan plan;
  Result<MiningPlan> mining = MiningPlan::Default(schema);
  if (!mining.ok()) return mining.status();
  plan.mining = std::move(mining.value());
  // Restrict mined dimension levels to those the two layers span.
  for (size_t d = 0; d < plan.mining.dim_levels.size(); ++d) {
    std::vector<int> levels;
    for (int l = minimum_interest.levels[d]; l <= observation.levels[d]; ++l) {
      if (l >= 1) levels.push_back(l);
    }
    plan.mining.dim_levels[d] = std::move(levels);
  }

  // The chain: walk from the observation layer up to the minimum-interest
  // layer, generalizing dimensions one step at a time in dimension order.
  ItemLevel cur = observation;
  plan.item_levels.push_back(cur);
  while (!(cur == minimum_interest)) {
    for (size_t d = 0; d < cur.levels.size(); ++d) {
      if (cur.levels[d] > minimum_interest.levels[d]) {
        cur.levels[d]--;
        break;
      }
    }
    plan.item_levels.push_back(cur);
  }

  for (int pl = 0; pl < static_cast<int>(plan.mining.path_levels.size());
       ++pl) {
    plan.path_levels.push_back(pl);
  }
  return plan;
}

int FlowCubePlan::FindItemLevel(const ItemLevel& level) const {
  for (size_t i = 0; i < item_levels.size(); ++i) {
    if (item_levels[i] == level) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace flowcube
