#include "flowcube/flowcube.h"

#include "common/logging.h"

namespace flowcube {

const FlowCell* Cuboid::Find(const Itemset& dims) const {
  const auto it = cells_.find(dims);
  return it == cells_.end() ? nullptr : &it->second;
}

FlowCell* Cuboid::FindMutable(const Itemset& dims) {
  const auto it = cells_.find(dims);
  return it == cells_.end() ? nullptr : &it->second;
}

void Cuboid::Insert(FlowCell cell) {
  Itemset key = cell.dims;
  const auto [it, inserted] = cells_.emplace(std::move(key), std::move(cell));
  FC_CHECK_MSG(inserted, "cell already exists in cuboid");
}

bool Cuboid::Erase(const Itemset& dims) { return cells_.erase(dims) > 0; }

FlowCube::FlowCube(FlowCubePlan plan, SchemaPtr schema)
    : plan_(std::move(plan)),
      schema_(std::move(schema)),
      catalog_(std::make_unique<ItemCatalog>(schema_)) {
  cuboids_.reserve(plan_.item_levels.size() * plan_.path_levels.size());
  for (const ItemLevel& il : plan_.item_levels) {
    for (int pl : plan_.path_levels) {
      cuboids_.push_back(std::make_unique<Cuboid>(il, pl));
    }
  }
}

std::string FlowCube::CellName(const Itemset& dims) const {
  std::vector<std::string> parts(schema_->num_dimensions(), "*");
  for (ItemId id : dims) {
    const size_t d = catalog_->DimOf(id);
    parts[d] = schema_->dimensions[d].Name(catalog_->NodeOf(id));
  }
  std::string out = "(";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i];
  }
  return out + ")";
}

size_t FlowCube::Index(size_t il_index, size_t pl_index) const {
  FC_CHECK(il_index < plan_.item_levels.size());
  FC_CHECK(pl_index < plan_.path_levels.size());
  return il_index * plan_.path_levels.size() + pl_index;
}

const Cuboid& FlowCube::cuboid(size_t il_index, size_t pl_index) const {
  return *cuboids_[Index(il_index, pl_index)];
}

Cuboid& FlowCube::mutable_cuboid(size_t il_index, size_t pl_index) {
  return *cuboids_[Index(il_index, pl_index)];
}

const Cuboid* FlowCube::FindCuboid(const ItemLevel& item_level,
                                   int path_level) const {
  const int il = plan_.FindItemLevel(item_level);
  if (il < 0) return nullptr;
  for (size_t p = 0; p < plan_.path_levels.size(); ++p) {
    if (plan_.path_levels[p] == path_level) {
      return cuboids_[Index(static_cast<size_t>(il), p)].get();
    }
  }
  return nullptr;
}

size_t FlowCube::TotalCells() const {
  size_t total = 0;
  for (const auto& c : cuboids_) total += c->size();
  return total;
}

size_t FlowCube::RedundantCells() const {
  size_t total = 0;
  for (const auto& c : cuboids_) {
    c->ForEach([&total](const FlowCell& cell) {
      if (cell.redundant) total++;
    });
  }
  return total;
}

size_t FlowCube::EraseRedundant() {
  size_t removed = 0;
  for (const auto& c : cuboids_) {
    std::vector<Itemset> to_erase;
    c->ForEach([&to_erase](const FlowCell& cell) {
      if (cell.redundant) to_erase.push_back(cell.dims);
    });
    for (const Itemset& dims : to_erase) {
      removed += c->Erase(dims) ? 1 : 0;
    }
  }
  return removed;
}

}  // namespace flowcube
