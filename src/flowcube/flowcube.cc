#include "flowcube/flowcube.h"

#include <algorithm>

#include "common/logging.h"

namespace flowcube {

size_t Cuboid::SlotCapacityFor(size_t n) {
  // Smallest power of two keeping the load factor at or below 0.7.
  size_t capacity = 8;
  while (n * 10 > capacity * 7) capacity <<= 1;
  return capacity;
}

size_t Cuboid::ProbeFor(const Itemset& dims) const {
  FC_DCHECK(!slots_.empty());
  const size_t mask = slots_.size() - 1;
  size_t slot = ItemsetHash{}(dims) & mask;
  while (slots_[slot] != kEmptySlot && cells_[slots_[slot]].dims != dims) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

void Cuboid::Rehash(size_t capacity) {
  slots_.Reset(capacity, kEmptySlot);
  const size_t mask = capacity - 1;
  for (size_t i = 0; i < cells_.size(); ++i) {
    size_t slot = ItemsetHash{}(cells_[i].dims) & mask;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    slots_.Mut(slot) = static_cast<uint32_t>(i);
  }
}

void Cuboid::Reserve(size_t n) {
  cells_.reserve(n);
  const size_t capacity = SlotCapacityFor(n);
  if (capacity > slots_.size()) Rehash(capacity);
}

const FlowCell* Cuboid::Find(const Itemset& dims) const {
  if (cells_.empty()) return nullptr;
  const size_t slot = ProbeFor(dims);
  return slots_[slot] == kEmptySlot ? nullptr : &cells_[slots_[slot]];
}

FlowCell* Cuboid::FindMutable(const Itemset& dims) {
  if (cells_.empty()) return nullptr;
  const size_t slot = ProbeFor(dims);
  return slots_[slot] == kEmptySlot ? nullptr : &cells_[slots_[slot]];
}

void Cuboid::Insert(FlowCell cell) {
  const size_t needed = SlotCapacityFor(cells_.size() + 1);
  if (needed > slots_.size()) Rehash(needed);
  const size_t slot = ProbeFor(cell.dims);
  FC_CHECK_MSG(slots_[slot] == kEmptySlot, "cell already exists in cuboid");
  slots_.Mut(slot) = static_cast<uint32_t>(cells_.size());
  cells_.push_back(std::move(cell));
}

bool Cuboid::Erase(const Itemset& dims) {
  if (cells_.empty()) return false;
  const size_t mask = slots_.size() - 1;
  size_t slot = ProbeFor(dims);
  if (slots_[slot] == kEmptySlot) return false;
  const uint32_t pos = slots_[slot];

  // Backward-shift deletion: close the hole by sliding later entries of the
  // probe chain down, so lookups never need tombstones.
  size_t hole = slot;
  size_t next = slot;
  for (;;) {
    next = (next + 1) & mask;
    if (slots_[next] == kEmptySlot) break;
    const size_t home = ItemsetHash{}(cells_[slots_[next]].dims) & mask;
    // Entry at `next` may move into the hole only if its home slot does not
    // lie cyclically within (hole, next].
    const bool home_after_hole = hole <= next ? (home > hole && home <= next)
                                              : (home > hole || home <= next);
    if (!home_after_hole) {
      slots_.Mut(hole) = slots_[next];
      hole = next;
    }
  }
  slots_.Mut(hole) = kEmptySlot;

  // Dense-vector removal: move the last cell into the freed position and
  // repoint its slot (found by position value — the moved-from last cell no
  // longer has valid dims to compare against).
  const uint32_t last = static_cast<uint32_t>(cells_.size() - 1);
  if (pos != last) {
    cells_[pos] = std::move(cells_[last]);
    size_t s = ItemsetHash{}(cells_[pos].dims) & mask;
    while (slots_[s] != last) s = (s + 1) & mask;
    slots_.Mut(s) = pos;
  }
  cells_.pop_back();
  return true;
}

std::vector<const FlowCell*> Cuboid::SortedCells() const {
  std::vector<const FlowCell*> out;
  out.reserve(cells_.size());
  for (const FlowCell& cell : cells_) out.push_back(&cell);
  std::sort(out.begin(), out.end(), [](const FlowCell* a, const FlowCell* b) {
    return a->dims < b->dims;
  });
  return out;
}

size_t Cuboid::MemoryUsage() const {
  size_t bytes = sizeof(*this);
  bytes += item_level_.levels.capacity() * sizeof(int);
  bytes += slots_.OwnedBytes();
  bytes += cells_.capacity() * sizeof(FlowCell);
  for (const FlowCell& cell : cells_) {
    bytes += cell.dims.capacity() * sizeof(ItemId);
    // The FlowCell footprint itself is already counted via the vector
    // capacity; add only the graph's heap.
    bytes += cell.graph.MemoryUsage() - sizeof(FlowGraph);
  }
  return bytes;
}

FlowCube::FlowCube(FlowCubePlan plan, SchemaPtr schema)
    : plan_(std::move(plan)),
      schema_(std::move(schema)),
      catalog_(std::make_unique<ItemCatalog>(schema_)) {
  cuboids_.reserve(plan_.item_levels.size() * plan_.path_levels.size());
  for (const ItemLevel& il : plan_.item_levels) {
    for (int pl : plan_.path_levels) {
      cuboids_.push_back(std::make_unique<Cuboid>(il, pl));
    }
  }
}

std::string FlowCube::CellName(const Itemset& dims) const {
  std::vector<std::string> parts(schema_->num_dimensions(), "*");
  for (ItemId id : dims) {
    const size_t d = catalog_->DimOf(id);
    parts[d] = schema_->dimensions[d].Name(catalog_->NodeOf(id));
  }
  std::string out = "(";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts[i];
  }
  return out + ")";
}

size_t FlowCube::Index(size_t il_index, size_t pl_index) const {
  FC_CHECK(il_index < plan_.item_levels.size());
  FC_CHECK(pl_index < plan_.path_levels.size());
  return il_index * plan_.path_levels.size() + pl_index;
}

const Cuboid& FlowCube::cuboid(size_t il_index, size_t pl_index) const {
  return *cuboids_[Index(il_index, pl_index)];
}

Cuboid& FlowCube::mutable_cuboid(size_t il_index, size_t pl_index) {
  return *cuboids_[Index(il_index, pl_index)];
}

const Cuboid* FlowCube::FindCuboid(const ItemLevel& item_level,
                                   int path_level) const {
  const int il = plan_.FindItemLevel(item_level);
  if (il < 0) return nullptr;
  for (size_t p = 0; p < plan_.path_levels.size(); ++p) {
    if (plan_.path_levels[p] == path_level) {
      return cuboids_[Index(static_cast<size_t>(il), p)].get();
    }
  }
  return nullptr;
}

size_t FlowCube::TotalCells() const {
  size_t total = 0;
  for (const auto& c : cuboids_) total += c->size();
  return total;
}

size_t FlowCube::RedundantCells() const {
  size_t total = 0;
  for (const auto& c : cuboids_) {
    c->ForEach([&total](const FlowCell& cell) {
      if (cell.redundant) total++;
    });
  }
  return total;
}

size_t FlowCube::EraseRedundant() {
  size_t removed = 0;
  for (const auto& c : cuboids_) {
    std::vector<Itemset> to_erase;
    c->ForEach([&to_erase](const FlowCell& cell) {
      if (cell.redundant) to_erase.push_back(cell.dims);
    });
    for (const Itemset& dims : to_erase) {
      removed += c->Erase(dims) ? 1 : 0;
    }
  }
  return removed;
}

size_t FlowCube::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& c : cuboids_) bytes += c->MemoryUsage();
  return bytes;
}

FlowCube FlowCube::Clone() const {
  // The constructor recreates the same cuboid grid (plan order is
  // deterministic); copy-assigning each cuboid then brings over the cells,
  // the lookup index, and every flowgraph.
  FlowCube clone(plan_, schema_);
  for (size_t i = 0; i < cuboids_.size(); ++i) {
    *clone.cuboids_[i] = *cuboids_[i];
  }
  return clone;
}

}  // namespace flowcube
