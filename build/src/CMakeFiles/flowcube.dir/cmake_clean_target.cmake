file(REMOVE_RECURSE
  "libflowcube.a"
)
