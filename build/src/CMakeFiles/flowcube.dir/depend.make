# Empty dependencies file for flowcube.
# This may be replaced when dependencies are built.
