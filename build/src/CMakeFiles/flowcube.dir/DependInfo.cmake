
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/random.cc" "src/CMakeFiles/flowcube.dir/common/random.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/flowcube.dir/common/status.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/flowcube.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/flowcube.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/common/zipf.cc.o.d"
  "/root/repo/src/cube/buc.cc" "src/CMakeFiles/flowcube.dir/cube/buc.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/cube/buc.cc.o.d"
  "/root/repo/src/cube/cell.cc" "src/CMakeFiles/flowcube.dir/cube/cell.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/cube/cell.cc.o.d"
  "/root/repo/src/cube/cubing_miner.cc" "src/CMakeFiles/flowcube.dir/cube/cubing_miner.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/cube/cubing_miner.cc.o.d"
  "/root/repo/src/flowcube/builder.cc" "src/CMakeFiles/flowcube.dir/flowcube/builder.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowcube/builder.cc.o.d"
  "/root/repo/src/flowcube/flowcube.cc" "src/CMakeFiles/flowcube.dir/flowcube/flowcube.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowcube/flowcube.cc.o.d"
  "/root/repo/src/flowcube/plan.cc" "src/CMakeFiles/flowcube.dir/flowcube/plan.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowcube/plan.cc.o.d"
  "/root/repo/src/flowcube/query.cc" "src/CMakeFiles/flowcube.dir/flowcube/query.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowcube/query.cc.o.d"
  "/root/repo/src/flowgraph/builder.cc" "src/CMakeFiles/flowcube.dir/flowgraph/builder.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowgraph/builder.cc.o.d"
  "/root/repo/src/flowgraph/exception_miner.cc" "src/CMakeFiles/flowcube.dir/flowgraph/exception_miner.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowgraph/exception_miner.cc.o.d"
  "/root/repo/src/flowgraph/flowgraph.cc" "src/CMakeFiles/flowcube.dir/flowgraph/flowgraph.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowgraph/flowgraph.cc.o.d"
  "/root/repo/src/flowgraph/merge.cc" "src/CMakeFiles/flowcube.dir/flowgraph/merge.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowgraph/merge.cc.o.d"
  "/root/repo/src/flowgraph/render.cc" "src/CMakeFiles/flowcube.dir/flowgraph/render.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowgraph/render.cc.o.d"
  "/root/repo/src/flowgraph/similarity.cc" "src/CMakeFiles/flowcube.dir/flowgraph/similarity.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowgraph/similarity.cc.o.d"
  "/root/repo/src/flowgraph/stats.cc" "src/CMakeFiles/flowcube.dir/flowgraph/stats.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/flowgraph/stats.cc.o.d"
  "/root/repo/src/gen/paper_example.cc" "src/CMakeFiles/flowcube.dir/gen/paper_example.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/gen/paper_example.cc.o.d"
  "/root/repo/src/gen/path_generator.cc" "src/CMakeFiles/flowcube.dir/gen/path_generator.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/gen/path_generator.cc.o.d"
  "/root/repo/src/gen/sequence_pool.cc" "src/CMakeFiles/flowcube.dir/gen/sequence_pool.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/gen/sequence_pool.cc.o.d"
  "/root/repo/src/hierarchy/concept_hierarchy.cc" "src/CMakeFiles/flowcube.dir/hierarchy/concept_hierarchy.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/hierarchy/concept_hierarchy.cc.o.d"
  "/root/repo/src/hierarchy/lattice.cc" "src/CMakeFiles/flowcube.dir/hierarchy/lattice.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/hierarchy/lattice.cc.o.d"
  "/root/repo/src/io/text_io.cc" "src/CMakeFiles/flowcube.dir/io/text_io.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/io/text_io.cc.o.d"
  "/root/repo/src/mining/apriori.cc" "src/CMakeFiles/flowcube.dir/mining/apriori.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/mining/apriori.cc.o.d"
  "/root/repo/src/mining/compatibility.cc" "src/CMakeFiles/flowcube.dir/mining/compatibility.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/mining/compatibility.cc.o.d"
  "/root/repo/src/mining/item_catalog.cc" "src/CMakeFiles/flowcube.dir/mining/item_catalog.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/mining/item_catalog.cc.o.d"
  "/root/repo/src/mining/mining_result.cc" "src/CMakeFiles/flowcube.dir/mining/mining_result.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/mining/mining_result.cc.o.d"
  "/root/repo/src/mining/shared_miner.cc" "src/CMakeFiles/flowcube.dir/mining/shared_miner.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/mining/shared_miner.cc.o.d"
  "/root/repo/src/mining/stage_catalog.cc" "src/CMakeFiles/flowcube.dir/mining/stage_catalog.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/mining/stage_catalog.cc.o.d"
  "/root/repo/src/mining/transaction.cc" "src/CMakeFiles/flowcube.dir/mining/transaction.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/mining/transaction.cc.o.d"
  "/root/repo/src/mining/transform.cc" "src/CMakeFiles/flowcube.dir/mining/transform.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/mining/transform.cc.o.d"
  "/root/repo/src/path/path.cc" "src/CMakeFiles/flowcube.dir/path/path.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/path/path.cc.o.d"
  "/root/repo/src/path/path_aggregator.cc" "src/CMakeFiles/flowcube.dir/path/path_aggregator.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/path/path_aggregator.cc.o.d"
  "/root/repo/src/path/path_database.cc" "src/CMakeFiles/flowcube.dir/path/path_database.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/path/path_database.cc.o.d"
  "/root/repo/src/rfid/cleaner.cc" "src/CMakeFiles/flowcube.dir/rfid/cleaner.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/rfid/cleaner.cc.o.d"
  "/root/repo/src/rfid/discretizer.cc" "src/CMakeFiles/flowcube.dir/rfid/discretizer.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/rfid/discretizer.cc.o.d"
  "/root/repo/src/rfid/reader_simulator.cc" "src/CMakeFiles/flowcube.dir/rfid/reader_simulator.cc.o" "gcc" "src/CMakeFiles/flowcube.dir/rfid/reader_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
