# Empty dependencies file for flowcube_tests.
# This may be replaced when dependencies are built.
