
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apriori_test.cc" "tests/CMakeFiles/flowcube_tests.dir/apriori_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/apriori_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/flowcube_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/compatibility_test.cc" "tests/CMakeFiles/flowcube_tests.dir/compatibility_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/compatibility_test.cc.o.d"
  "/root/repo/tests/cube_test.cc" "tests/CMakeFiles/flowcube_tests.dir/cube_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/cube_test.cc.o.d"
  "/root/repo/tests/exception_test.cc" "tests/CMakeFiles/flowcube_tests.dir/exception_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/exception_test.cc.o.d"
  "/root/repo/tests/flowcube_test.cc" "tests/CMakeFiles/flowcube_tests.dir/flowcube_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/flowcube_test.cc.o.d"
  "/root/repo/tests/flowgraph_test.cc" "tests/CMakeFiles/flowcube_tests.dir/flowgraph_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/flowgraph_test.cc.o.d"
  "/root/repo/tests/gen_test.cc" "tests/CMakeFiles/flowcube_tests.dir/gen_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/gen_test.cc.o.d"
  "/root/repo/tests/hierarchy_test.cc" "tests/CMakeFiles/flowcube_tests.dir/hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/hierarchy_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/flowcube_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/flowcube_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/merge_test.cc" "tests/CMakeFiles/flowcube_tests.dir/merge_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/merge_test.cc.o.d"
  "/root/repo/tests/mining_catalog_test.cc" "tests/CMakeFiles/flowcube_tests.dir/mining_catalog_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/mining_catalog_test.cc.o.d"
  "/root/repo/tests/path_test.cc" "tests/CMakeFiles/flowcube_tests.dir/path_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/path_test.cc.o.d"
  "/root/repo/tests/rfid_test.cc" "tests/CMakeFiles/flowcube_tests.dir/rfid_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/rfid_test.cc.o.d"
  "/root/repo/tests/shared_miner_test.cc" "tests/CMakeFiles/flowcube_tests.dir/shared_miner_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/shared_miner_test.cc.o.d"
  "/root/repo/tests/similarity_test.cc" "tests/CMakeFiles/flowcube_tests.dir/similarity_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/similarity_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/flowcube_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/flowcube_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/transform_test.cc" "tests/CMakeFiles/flowcube_tests.dir/transform_test.cc.o" "gcc" "tests/CMakeFiles/flowcube_tests.dir/transform_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flowcube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
