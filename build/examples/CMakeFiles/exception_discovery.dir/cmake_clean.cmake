file(REMOVE_RECURSE
  "CMakeFiles/exception_discovery.dir/exception_discovery.cpp.o"
  "CMakeFiles/exception_discovery.dir/exception_discovery.cpp.o.d"
  "exception_discovery"
  "exception_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exception_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
