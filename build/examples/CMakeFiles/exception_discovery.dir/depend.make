# Empty dependencies file for exception_discovery.
# This may be replaced when dependencies are built.
