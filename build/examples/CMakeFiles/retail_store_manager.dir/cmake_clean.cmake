file(REMOVE_RECURSE
  "CMakeFiles/retail_store_manager.dir/retail_store_manager.cpp.o"
  "CMakeFiles/retail_store_manager.dir/retail_store_manager.cpp.o.d"
  "retail_store_manager"
  "retail_store_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_store_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
