# Empty compiler generated dependencies file for retail_store_manager.
# This may be replaced when dependencies are built.
