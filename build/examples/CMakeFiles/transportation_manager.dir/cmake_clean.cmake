file(REMOVE_RECURSE
  "CMakeFiles/transportation_manager.dir/transportation_manager.cpp.o"
  "CMakeFiles/transportation_manager.dir/transportation_manager.cpp.o.d"
  "transportation_manager"
  "transportation_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transportation_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
