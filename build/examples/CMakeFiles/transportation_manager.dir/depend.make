# Empty dependencies file for transportation_manager.
# This may be replaced when dependencies are built.
