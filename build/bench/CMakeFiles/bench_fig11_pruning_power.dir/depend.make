# Empty dependencies file for bench_fig11_pruning_power.
# This may be replaced when dependencies are built.
