# Empty compiler generated dependencies file for bench_fig10_path_density.
# This may be replaced when dependencies are built.
