# Empty dependencies file for bench_fig9_item_density.
# This may be replaced when dependencies are built.
