# Empty dependencies file for bench_fig8_dimensions.
# This may be replaced when dependencies are built.
