file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dimensions.dir/bench_fig8_dimensions.cc.o"
  "CMakeFiles/bench_fig8_dimensions.dir/bench_fig8_dimensions.cc.o.d"
  "bench_fig8_dimensions"
  "bench_fig8_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
