# Empty dependencies file for bench_fig7_min_support.
# This may be replaced when dependencies are built.
