file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_min_support.dir/bench_fig7_min_support.cc.o"
  "CMakeFiles/bench_fig7_min_support.dir/bench_fig7_min_support.cc.o.d"
  "bench_fig7_min_support"
  "bench_fig7_min_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_min_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
