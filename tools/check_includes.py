#!/usr/bin/env python3
"""Custom include/header lint for the FlowCube tree.

Enforced conventions (see DESIGN.md, "Lint workflow"):

  1. Every header carries an include guard named after its path:
     src/common/audit.h -> FLOWCUBE_COMMON_AUDIT_H_ (the src/ prefix is
     dropped; other roots keep theirs: bench/bench_common.h ->
     FLOWCUBE_BENCH_BENCH_COMMON_H_).
  2. A .cc/.cpp file's first include is its own header, when one exists.
  3. Quoted includes name project files, path-qualified from src/ (or
     sitting next to the including file); system and third-party headers
     (<gtest/...>, <benchmark/...>, the standard library) use angle
     brackets.
  4. `using namespace` at file scope is banned in headers and in src/ and
     tests/ translation units (bench/example binaries may import the
     project's own namespace).
  5. With --self-contained, every header under src/ (and fuzz/harness.h)
     must compile standalone: a one-line TU that includes only that header
     is syntax-checked, so a header can never depend on its includer's
     includes. Run via the `include-check` CMake target (which passes the
     configured compiler) or tools/lint.sh.

Exit status 0 when the tree is clean; 1 with one "file:line: message" per
violation otherwise.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
SCAN_ROOTS = ["src", "tests", "bench", "examples"]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+")


def expected_guard(path: Path) -> str:
    rel = path.relative_to(REPO)
    parts = rel.parts[1:] if rel.parts[0] == "src" else rel.parts
    slug = "_".join(parts)
    return "FLOWCUBE_" + re.sub(r"[^A-Za-z0-9]", "_", slug).upper() + "_"


def check_header_guard(path, lines, errors):
    ifndef_line = define_line = None
    guard = None
    for i, line in enumerate(lines):
        m = GUARD_IFNDEF_RE.match(line)
        if m:
            guard = m.group(1)
            ifndef_line = i
            break
    want = expected_guard(path)
    if guard is None:
        errors.append(f"{path}:1: header has no include guard (want {want})")
        return
    if guard != want:
        errors.append(
            f"{path}:{ifndef_line + 1}: include guard {guard} should be {want}"
        )
        return
    define = f"#define {guard}"
    if ifndef_line + 1 >= len(lines) or lines[ifndef_line + 1].strip() != define:
        errors.append(
            f"{path}:{ifndef_line + 2}: include guard #ifndef is not followed "
            f"by '{define}'"
        )


def check_includes(path, lines, errors):
    first_project_include = None
    for i, line in enumerate(lines):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        style, target = m.groups()
        if style == "<":
            continue
        if first_project_include is None:
            first_project_include = target
        if target.startswith(("gtest/", "gmock/", "benchmark/")):
            errors.append(
                f"{path}:{i + 1}: third-party header \"{target}\" must use "
                f"angle brackets"
            )
            continue
        # fuzz/ headers are path-qualified from the repo root (they sit
        # outside src/ so the fuzz targets stay out of the library).
        if target.startswith("fuzz/") and (REPO / target).is_file():
            continue
        if not (SRC / target).is_file() and not (path.parent / target).is_file():
            errors.append(
                f"{path}:{i + 1}: quoted include \"{target}\" resolves "
                f"neither against src/ nor the including directory"
            )

    if path.suffix in (".cc", ".cpp"):
        own_header = path.with_suffix(".h")
        if own_header.is_file():
            want = (
                str(own_header.relative_to(SRC))
                if own_header.is_relative_to(SRC)
                else own_header.name
            )
            if first_project_include != want:
                errors.append(
                    f"{path}:1: first include should be the file's own "
                    f"header \"{want}\""
                )


def check_using_namespace(path, lines, errors):
    for i, line in enumerate(lines):
        if USING_NAMESPACE_RE.match(line):
            errors.append(f"{path}:{i + 1}: file-scope 'using namespace'")


def self_contained_headers():
    """Headers that must compile standalone: everything under src/, plus
    the fuzz harness interface (tests include it across roots)."""
    headers = sorted(SRC.rglob("*.h"))
    harness = REPO / "fuzz" / "harness.h"
    if harness.is_file():
        headers.append(harness)
    return headers


def check_self_contained(compiler: str, jobs: int, errors):
    """Syntax-checks a one-include TU per header. A header that only
    compiles after its includer pulled in something else fails here."""

    def compile_one(header: Path):
        rel = (
            header.relative_to(SRC)
            if header.is_relative_to(SRC)
            else header.relative_to(REPO)
        )
        tu = f'#include "{rel.as_posix()}"\n'
        cmd = [
            compiler, "-std=c++20", "-fsyntax-only",
            "-I", str(SRC), "-I", str(REPO),
            "-x", "c++", "-",
        ]
        proc = subprocess.run(cmd, input=tu, capture_output=True, text=True)
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            return (
                f"{header}:1: header is not self-contained "
                f"({' | '.join(detail[:3])})"
            )
        return None

    headers = self_contained_headers()
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for result in pool.map(compile_one, headers):
            if result is not None:
                errors.append(result)
    return len(headers)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--self-contained", action="store_true",
        help="also compile every src/ header standalone (-fsyntax-only)")
    parser.add_argument(
        "--compiler", default=os.environ.get("CXX", "c++"),
        help="compiler for --self-contained (default: $CXX or c++)")
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 4,
        help="parallel compiles for --self-contained")
    args = parser.parse_args()

    errors = []
    scanned = 0
    for root in SCAN_ROOTS:
        base = REPO / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp"):
                continue
            scanned += 1
            lines = path.read_text(encoding="utf-8").splitlines()
            if path.suffix == ".h":
                check_header_guard(path, lines, errors)
            check_includes(path, lines, errors)
            if path.suffix == ".h" or root in ("src", "tests"):
                check_using_namespace(path, lines, errors)

    compiled = 0
    if args.self_contained:
        compiled = check_self_contained(args.compiler, args.jobs, errors)

    for e in errors:
        print(e, file=sys.stderr)
    summary = f"check_includes: {scanned} files scanned"
    if args.self_contained:
        summary += f", {compiled} headers syntax-checked standalone"
    summary += f", {len(errors)} violation(s)"
    print(summary, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
