#!/usr/bin/env python3
"""Unit tests for tools/fc_lint.py against the known-bad fixtures in
tools/lint_fixtures/. Runs the regex engine (--no-libclang) so results
are identical with and without libclang installed."""

import subprocess
import sys
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
FC_LINT = TOOLS / "fc_lint.py"
FIXTURES = TOOLS / "lint_fixtures"


def run_lint(*argv):
    proc = subprocess.run(
        [sys.executable, str(FC_LINT), "--no-libclang", *argv],
        capture_output=True, text=True)
    return proc.returncode, proc.stderr


class FcLintTest(unittest.TestCase):

    def assert_findings(self, output, *fragments):
        for fragment in fragments:
            self.assertIn(fragment, output, msg=f"full output:\n{output}")

    def test_unordered_iteration_in_canonical_path(self):
        code, out = run_lint(str(FIXTURES / "bad_dump.cc"))
        self.assertEqual(code, 1)
        self.assert_findings(out, "[unordered-iteration]",
                             "bad_dump.cc:11", "bad_dump.cc:14",
                             "bad_dump.cc:17")
        self.assertEqual(out.count("[unordered-iteration]"), 3)

    def test_unordered_iteration_scoped_off_elsewhere(self):
        # Same content, but only canonical-order paths (dump/checkpoint/
        # audit/...) are held to the ordering rule.
        fixture = FIXTURES / "bad_dump.cc"
        copy = FIXTURES / "tmp_graph_build.cc"
        copy.write_text(fixture.read_text())
        try:
            code, out = run_lint(str(copy))
            self.assertEqual(code, 0, msg=out)
        finally:
            copy.unlink()

    def test_raw_random(self):
        code, out = run_lint(str(FIXTURES / "bad_random.cc"))
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[raw-random]"), 6, msg=out)
        self.assert_findings(out, "rand()/srand()", "std::random_device",
                             "system_clock", "time()")

    def test_raw_clock(self):
        code, out = run_lint(str(FIXTURES / "bad_clock.cc"))
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[raw-clock]"), 2, msg=out)
        self.assert_findings(out, "bad_clock.cc:5", "bad_clock.cc:6")

    def test_raw_assert_and_no_cout(self):
        code, out = run_lint(str(FIXTURES / "bad_assert_cout.cc"))
        self.assertEqual(code, 1)
        self.assert_findings(out, "[raw-assert]", "FC_CHECK", "[no-cout]")

    def test_justified_suppressions_silence_findings(self):
        code, out = run_lint(str(FIXTURES / "suppressed_ok_dump.cc"))
        self.assertEqual(code, 0, msg=out)
        self.assertIn("0 finding(s)", out)

    def test_suppression_without_justification_is_a_finding(self):
        code, out = run_lint(str(FIXTURES / "suppressed_no_reason.cc"))
        self.assertEqual(code, 1)
        self.assert_findings(out, "suppression needs a justification",
                             "suppressed_no_reason.cc:6")
        # The suppression still suppresses the underlying finding; only
        # the missing justification is reported.
        self.assertEqual(out.count("[raw-random]"), 1, msg=out)

    def test_clean_file_with_decoy_comments_and_strings(self):
        code, out = run_lint(str(FIXTURES / "clean_dump.cc"))
        self.assertEqual(code, 0, msg=out)

    def test_rule_subset_selection(self):
        code, out = run_lint("--rules", "no-cout",
                             str(FIXTURES / "bad_random.cc"))
        self.assertEqual(code, 0, msg=out)
        code, _ = run_lint("--rules", "nonsense",
                           str(FIXTURES / "bad_random.cc"))
        self.assertEqual(code, 2)

    def test_raw_intrinsics(self):
        code, out = run_lint(str(FIXTURES / "bad_intrinsics.cc"))
        self.assertEqual(code, 1)
        self.assert_findings(out, "[raw-intrinsics]",
                             "SIMD intrinsics header",
                             "x86 SIMD intrinsic", "NEON intrinsic")
        # Header include + 3 _mm* lines + 1 NEON line; the commented
        # vld1q_u32 mention must not count.
        self.assertEqual(out.count("[raw-intrinsics]"), 5, msg=out)

    def test_raw_intrinsics_allowed_in_simd_header(self):
        path = TOOLS.parent / "src/common/simd.h"
        if path.exists():
            code, out = run_lint("--rules", "raw-intrinsics", str(path))
            self.assertEqual(code, 0, msg=out)

    def test_repo_src_tree_is_clean(self):
        code, out = run_lint(str(TOOLS.parent / "src"))
        self.assertEqual(code, 0, msg=out)

    def test_allowlists(self):
        # The seeded RNG and the stopwatch are the sanctioned homes of
        # entropy and monotonic time; the rules must not fire there.
        for name in ("src/common/random.h", "src/common/stopwatch.h"):
            path = TOOLS.parent / name
            if path.exists():
                code, out = run_lint(str(path))
                self.assertEqual(code, 0, msg=f"{name}:\n{out}")


if __name__ == "__main__":
    unittest.main()
