// fc_lint fixture: every finding carries a justified suppression, so the
// lint must report zero findings here.
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <unordered_map>

std::size_t DumpStuff() {
  // fc-lint: allow(raw-clock): fixture exercises previous-line suppression
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  unsigned r = rand();  // fc-lint: allow(raw-random): same-line suppression
  std::unordered_map<int, int> m{{1, 2}};
  std::size_t n = 0;
  // fc-lint: allow(unordered-iteration): order-insensitive count only
  for (const auto& kv : m) n += kv.second;
  // fc-lint: allow(raw-assert, no-cout): multi-rule suppression form
  assert(n > 0); std::cout << r;
  return n;
}
