// fc_lint fixture: a suppression without a justification is itself a
// finding (exactly one, attributed to the suppression line).
#include <cstdlib>

unsigned Entropy() {
  return rand();  // fc-lint: allow(raw-random)
}
