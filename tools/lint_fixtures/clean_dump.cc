// fc_lint fixture: canonical-order path that follows every rule — ordered
// iteration, no raw entropy/clock reads, FC_CHECK-style assertions only.
// Mentions of rand() or std::cout inside comments and string literals must
// not be flagged: "rand()" / "assert(" / std::cout in a comment.
#include <map>
#include <string>

static_assert(sizeof(int) >= 4, "static_assert is not a raw assert");

std::string DumpSorted(const std::map<int, int>& support) {
  std::string out = "calling rand() here would be bad; std::cout too";
  for (const auto& [cell, count] : support) {
    out += std::to_string(cell) + "=" + std::to_string(count) + "\n";
  }
  /* block comment: assert(false); rand(); steady_clock::now();
     none of these are code */
  return out;
}
