// fc_lint fixture: raw assert() and std::cout in library code.
#include <cassert>
#include <iostream>

void Check(int x) {
  assert(x > 0);                       // finding: compiles out under NDEBUG
  std::cout << "x=" << x << "\n";      // finding: library stdout
}
