// Fixture: raw SIMD intrinsics outside src/common/simd.h.
#include <immintrin.h>

int SumLanes(const int* p) {
  __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m256i w = _mm256_setzero_si256();
  (void)w;
  // NEON spelled out for the regex even though it never compiles here.
  // vld1q_u32(p) would be flagged too:
  return _mm_cvtsi128_si32(v);
}

void NeonLoad(const unsigned* p) {
  vld1q_u32(p);  // not a real call on x86; the lint flags the spelling
}
