// fc_lint fixture: every flavor of nondeterminism source the raw-random
// rule must catch outside src/common/random.*.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned NaughtyEntropy() {
  unsigned x = rand();                                     // finding
  srand(42);                                               // finding
  std::random_device rd;                                   // finding
  x += rd();
  auto wall = std::chrono::system_clock::now();            // finding
  (void)wall;
  x += static_cast<unsigned>(time(nullptr));               // finding
  struct timespec ts;
  clock_gettime(0, &ts);                                   // finding
  return x;
}
