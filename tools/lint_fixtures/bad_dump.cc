// fc_lint fixture: unordered iteration in a canonical-order path (the
// file name contains "dump", which scopes the rule on).
#include <string>
#include <unordered_map>
#include <unordered_set>

std::string DumpCells() {
  std::unordered_map<int, int> support;
  std::unordered_set<std::string> names{"a", "b"};
  std::string out;
  for (const auto& [cell, count] : support) {  // finding: range-for
    out += std::to_string(cell) + "=" + std::to_string(count);
  }
  for (auto it = support.begin(); it != support.end(); ++it) {  // finding
    out += std::to_string(it->first);
  }
  for (const std::string& name : names) {  // finding: range-for over set
    out += name;
  }
  return out;
}
