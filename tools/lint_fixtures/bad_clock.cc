// fc_lint fixture: monotonic clock read outside src/common/stopwatch.h.
#include <chrono>

double Elapsed() {
  auto t0 = std::chrono::steady_clock::now();              // finding
  auto t1 = std::chrono::high_resolution_clock::now();     // finding
  return std::chrono::duration<double>(t1 - t0).count();
}
