#!/usr/bin/env bash
# Lint runner: the custom include lint plus clang-tidy over every first-party
# translation unit. Exits non-zero on any finding.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir  a configured build directory holding compile_commands.json
#              (default: build-tidy if present, else build). When clang-tidy
#              is installed but no compilation database exists yet, one is
#              configured into build-tidy automatically.
#
# clang-tidy findings are also written to clang-tidy-report.txt in the build
# directory so CI can publish them as an artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== check_includes (conventions + self-contained headers) =="
python3 tools/check_includes.py --self-contained

echo "== fc_lint (determinism & style rules) =="
python3 tools/fc_lint.py src/

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy: not installed, skipping (install clang-tidy to run) =="
  exit 0
fi

BUILD_DIR="${1:-}"
if [[ -z "${BUILD_DIR}" ]]; then
  if [[ -f build-tidy/compile_commands.json ]]; then
    BUILD_DIR=build-tidy
  elif [[ -f build/compile_commands.json ]]; then
    BUILD_DIR=build
  else
    BUILD_DIR=build-tidy
    echo "== configuring ${BUILD_DIR} for a compilation database =="
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found" >&2
  exit 1
fi

echo "== clang-tidy (database: ${BUILD_DIR}) =="
mapfile -t SOURCES < <(find src tests bench examples \
  -name '*.cc' -o -name '*.cpp' | sort)

REPORT="${BUILD_DIR}/clang-tidy-report.txt"
: > "${REPORT}"
STATUS=0
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "${BUILD_DIR}" "${SOURCES[@]}" \
    | tee "${REPORT}" || STATUS=$?
else
  for f in "${SOURCES[@]}"; do
    clang-tidy --quiet -p "${BUILD_DIR}" "$f" 2>>"${REPORT}.err" \
      | tee -a "${REPORT}" || STATUS=$?
  done
fi
# clang-tidy emits findings as "warning:" lines; fail on any.
if grep -q "warning:" "${REPORT}"; then
  echo "clang-tidy found issues (full report: ${REPORT})" >&2
  exit 1
fi
exit "${STATUS}"
