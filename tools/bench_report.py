#!/usr/bin/env python3
"""Compare a directory of BENCH_*.json results against a committed baseline.

Each BENCH document is matched to the baseline file of the same name; rows
are keyed by their string-valued fields (x, algo, backend, ...), so the
report survives row reordering and added series. Lower-is-better metrics
(seconds, seconds_mine, seconds_setup) regress when they grow; *_per_sec
metrics regress when they shrink. Scales must match, otherwise the pair is
skipped with a note — a baseline captured at scale=1.0 says nothing about a
scale=0.02 smoke run.

Exit code is 0 unless --strict is given and a regression exceeded the
threshold. Lines use GitHub ::warning:: markers so regressions surface as
annotations in the nightly job.

Usage:
  tools/bench_report.py --baseline bench/baselines/scale-1.0 --current bench-json
"""

import argparse
import json
import sys
from pathlib import Path

LOWER_IS_BETTER = ("seconds", "seconds_mine", "seconds_setup")
HIGHER_IS_BETTER_SUFFIX = "_per_sec"


def row_key(row):
    return tuple(sorted(
        (k, v) for k, v in row.items() if isinstance(v, str)))


def metrics_of(row):
    out = {}
    for k, v in row.items():
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            continue
        if k in LOWER_IS_BETTER:
            out[k] = ("lower", float(v))
        elif k.endswith(HIGHER_IS_BETTER_SUFFIX):
            out[k] = ("higher", float(v))
    return out


def fmt_key(key):
    return "/".join(f"{v}" for _, v in key) or "(row)"


def compare_doc(name, base, cur, threshold, lines):
    regressions = 0
    if base.get("scale") != cur.get("scale"):
        lines.append(f"{name}: scale mismatch (baseline "
                     f"{base.get('scale')} vs current {cur.get('scale')}); "
                     "skipped")
        return 0
    base_rows = {row_key(r): r for r in base.get("rows", [])}
    for row in cur.get("rows", []):
        key = row_key(row)
        base_row = base_rows.get(key)
        if base_row is None:
            lines.append(f"{name} {fmt_key(key)}: new row (no baseline)")
            continue
        for metric, (direction, value) in metrics_of(row).items():
            ref = base_row.get(metric)
            if not isinstance(ref, (int, float)) or ref <= 0 or value <= 0:
                continue
            ratio = value / ref if direction == "lower" else ref / value
            marker = ""
            if ratio > threshold:
                marker = (f"  ::warning::regression x{ratio:.2f} "
                          f"(threshold x{threshold:.2f})")
                regressions += 1
            lines.append(f"{name} {fmt_key(key)} {metric}: "
                         f"{ref:.4g} -> {value:.4g}{marker}")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="directory of committed BENCH_*.json baselines")
    ap.add_argument("--current", required=True,
                    help="directory of freshly produced BENCH_*.json files")
    ap.add_argument("--threshold", type=float, default=1.15,
                    help="regression ratio above which a warning is "
                         "emitted (default 1.15 = 15%% worse)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 if any regression exceeded the threshold")
    args = ap.parse_args()

    baseline_dir = Path(args.baseline)
    current_dir = Path(args.current)
    current_files = sorted(current_dir.rglob("BENCH_*.json"))
    if not current_files:
        print(f"no BENCH_*.json under {current_dir}", file=sys.stderr)
        return 2

    lines, regressions = [], 0
    for cur_path in current_files:
        base_path = baseline_dir / cur_path.name
        if not base_path.exists():
            lines.append(f"{cur_path.name}: no committed baseline; "
                         "add one under "
                         f"{baseline_dir} to track regressions")
            continue
        cur = json.loads(cur_path.read_text())
        base = json.loads(base_path.read_text())
        regressions += compare_doc(cur_path.name, base, cur,
                                   args.threshold, lines)

    print("\n".join(lines))
    print(f"\n{regressions} regression(s) above x{args.threshold:.2f}")
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
