// fcsp_tool — operator CLI for FCSP checkpoint files.
//
//   fcsp_tool info <file>
//       Schema-free summary: format version, section sizes and checksum
//       verification, config fingerprint, live record count. Works on a
//       foreign checkpoint (no pipeline config needed).
//
//   fcsp_tool verify <file> [config flags]
//       Full read validation against a pipeline config: the resume path
//       (LoadCheckpoint) and, for v2 files, the zero-copy mapped load.
//       Exit 0 iff every reader accepts the file.
//
//   fcsp_tool upgrade <in> <out> [--format=1|2] [config flags]
//       Rewrite <in> as <out> in the requested format (default v2: the
//       relocatable sealed format the serving layer mmaps). Upgrading a
//       file already in the target format canonicalizes it.
//
// Config flags (verify/upgrade must match the writer's pipeline config —
// every checkpoint read validates a fingerprint over it; the defaults are
// the synthetic fixture the tests and seed corpora use):
//   --dims=N         schema dimensions        (default 2)
//   --seed=N         generator seed           (default 909)
//   --min-support=N  iceberg threshold        (default 2)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/status.h"
#include "gen/path_generator.h"
#include "store/format.h"
#include "store/mapped_cube.h"
#include "store/upgrade.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace flowcube {
namespace {

struct ToolConfig {
  int dims = 2;
  uint64_t seed = 909;
  uint32_t min_support = 2;
};

// The same fixture config as checkpoint_harness.cc / tests — the schema a
// checkpoint validates against is derived from the generator config, so
// the flags must mirror what produced the file.
struct Pipeline {
  SchemaPtr schema;
  FlowCubePlan plan;
  IncrementalMaintainerOptions options;
};

Pipeline MakePipeline(const ToolConfig& tool) {
  GeneratorConfig cfg;
  cfg.num_dimensions = tool.dims;
  cfg.dim_distinct_per_level = {2, 2, 2};
  cfg.num_location_groups = 3;
  cfg.locations_per_group = 3;
  cfg.num_sequences = 6;
  cfg.min_sequence_length = 2;
  cfg.max_sequence_length = 5;
  cfg.seed = tool.seed;
  PathGenerator gen(cfg);
  PathDatabase db = gen.Generate(1);
  Pipeline p;
  p.schema = db.schema_ptr();
  Result<FlowCubePlan> plan = FlowCubePlan::Default(db.schema());
  if (!plan.ok()) {
    std::fprintf(stderr, "fcsp_tool: cannot build plan: %s\n",
                 plan.status().ToString().c_str());
    std::exit(2);
  }
  p.plan = plan.value();
  p.options.build.min_support = tool.min_support;
  return p;
}

bool ParseFlag(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "fcsp_tool: bad value in %s\n", arg);
    std::exit(2);
  }
  *out = v;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: fcsp_tool info <file>\n"
               "       fcsp_tool verify <file> [--dims=N] [--seed=N] "
               "[--min-support=N]\n"
               "       fcsp_tool upgrade <in> <out> [--format=1|2] "
               "[--dims=N] [--seed=N] [--min-support=N]\n");
  return 2;
}

int RunInfo(const std::string& file) {
  Result<CheckpointFileInfo> info = InspectCheckpointFile(file);
  if (!info.ok()) {
    std::fprintf(stderr, "fcsp_tool: %s: %s\n", file.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("file:               %s\n", file.c_str());
  std::printf("format:             FCSP v%u\n", info->format);
  std::printf("file_size:          %llu\n",
              static_cast<unsigned long long>(info->file_size));
  std::printf("config_fingerprint: 0x%08x\n", info->config_fingerprint);
  std::printf("live_records:       %llu\n",
              static_cast<unsigned long long>(info->live_records));
  if (info->format == kFcspFormatV2) {
    std::printf("meta_size:          %llu\n",
                static_cast<unsigned long long>(info->meta_size));
    std::printf("arena_size:         %llu\n",
                static_cast<unsigned long long>(info->arena_size));
    std::printf("resume_size:        %llu%s\n",
                static_cast<unsigned long long>(info->resume_size),
                info->resume_size == 0 ? " (cube-only)" : "");
  } else {
    std::printf("payload_size:       %llu\n",
                static_cast<unsigned long long>(info->resume_size));
  }
  std::printf("checksums:          OK\n");
  return 0;
}

int RunVerify(const std::string& file, const ToolConfig& tool) {
  Result<CheckpointFileInfo> info = InspectCheckpointFile(file);
  if (!info.ok()) {
    std::fprintf(stderr, "fcsp_tool: %s: %s\n", file.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  const Pipeline p = MakePipeline(tool);
  int rc = 0;

  Result<RestoredPipeline> restored =
      LoadCheckpoint(file, p.schema, p.plan, p.options);
  if (restored.ok()) {
    std::printf("resume load:        OK (%llu live records)\n",
                static_cast<unsigned long long>(
                    restored->maintainer.live_record_count()));
  } else if (info->format == kFcspFormatV2 && info->resume_size == 0) {
    std::printf("resume load:        n/a (cube-only file)\n");
  } else {
    std::fprintf(stderr, "resume load:        FAILED: %s\n",
                 restored.status().ToString().c_str());
    rc = 1;
  }

  if (info->format == kFcspFormatV2) {
    Result<std::shared_ptr<const MappedCube>> mapped =
        MappedCube::Load(file, p.schema, p.plan, p.options);
    if (mapped.ok()) {
      std::printf("mapped load:        OK (%zu bytes mapped)\n",
                  mapped.value()->bytes_mapped());
    } else {
      std::fprintf(stderr, "mapped load:        FAILED: %s\n",
                   mapped.status().ToString().c_str());
      rc = 1;
    }
  }
  if (rc == 0) std::printf("verify:             OK\n");
  return rc;
}

int RunUpgrade(const std::string& in, const std::string& out,
               uint32_t format, const ToolConfig& tool) {
  const Pipeline p = MakePipeline(tool);
  Status upgraded =
      UpgradeCheckpointFile(in, out, p.schema, p.plan, p.options, format);
  if (!upgraded.ok()) {
    std::fprintf(stderr, "fcsp_tool: %s\n", upgraded.ToString().c_str());
    return 1;
  }
  Result<CheckpointFileInfo> info = InspectCheckpointFile(out);
  if (!info.ok()) {
    std::fprintf(stderr, "fcsp_tool: rewrote %s but it does not verify: %s\n",
                 out.c_str(), info.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (FCSP v%u, %llu bytes, %llu live records)\n",
              out.c_str(), info->format,
              static_cast<unsigned long long>(info->file_size),
              static_cast<unsigned long long>(info->live_records));
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];

  ToolConfig tool;
  uint64_t format = kFcspFormatV2;
  std::string positional[2];
  int npos = 0;
  for (int i = 2; i < argc; ++i) {
    uint64_t v = 0;
    if (ParseFlag(argv[i], "--dims", &v)) {
      tool.dims = static_cast<int>(v);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      tool.seed = v;
    } else if (ParseFlag(argv[i], "--min-support", &v)) {
      tool.min_support = static_cast<uint32_t>(v);
    } else if (ParseFlag(argv[i], "--format", &format)) {
      if (format != kFcspFormatV1 && format != kFcspFormatV2) {
        std::fprintf(stderr, "fcsp_tool: --format must be 1 or 2\n");
        return 2;
      }
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "fcsp_tool: unknown flag %s\n", argv[i]);
      return Usage();
    } else if (npos < 2) {
      positional[npos++] = argv[i];
    } else {
      return Usage();
    }
  }

  if (cmd == "info" && npos == 1) return RunInfo(positional[0]);
  if (cmd == "verify" && npos == 1) return RunVerify(positional[0], tool);
  if (cmd == "upgrade" && npos == 2) {
    return RunUpgrade(positional[0], positional[1],
                      static_cast<uint32_t>(format), tool);
  }
  return Usage();
}

}  // namespace
}  // namespace flowcube

int main(int argc, char** argv) { return flowcube::Run(argc, argv); }
