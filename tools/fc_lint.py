#!/usr/bin/env python3
"""fc_lint: FlowCube's project-specific determinism & style lint.

The cube's core invariant since PR 2 is byte-identical output across
serial, parallel, and incremental builds. These rules encode the coding
conventions that protect it (DESIGN.md §11):

  unordered-iteration  No iteration over std::unordered_map/unordered_set
                       in a canonical-order path (serialization, dump,
                       checkpoint, audit, render, or hashing code) — those
                       must go through SortedCells()-style orderings.
                       Scoped to files matching --canonical-paths.
  raw-random           No rand()/srand()/std::random_device and no
                       wall-clock reads (system_clock, time(), localtime,
                       gettimeofday, ...) outside src/common/random.*.
                       Seeded determinism lives there; wall clocks don't
                       belong in cube construction at all.
  raw-clock            No monotonic clock reads (steady_clock,
                       high_resolution_clock) outside src/common/stopwatch.h
                       — timing goes through Stopwatch/TraceSpan so it can
                       never leak into computed results.
  raw-assert           No raw assert(); use FC_CHECK (always on) or
                       FC_AUDIT (audit tier) so failures are reported
                       uniformly and never compiled out silently by NDEBUG.
  no-cout              No std::cout in src/; use the logging layer (or
                       return strings to the caller). Library code printing
                       to stdout corrupts tool output (dumps, metrics).
  raw-intrinsics       No raw SIMD intrinsics (immintrin.h/arm_neon.h
                       includes, _mm*/vld1*/vst1* calls) outside
                       src/common/simd.h — the ISA surface stays in one
                       audited file with a scalar fallback per kernel.

Suppression: append to the offending line (or the line directly above)

    // fc-lint: allow(<rule>): <justification>

A suppression without a justification is itself a finding. Findings print
as "file:line: [rule] message"; exit status is 1 when any exist.

Engine: when the python libclang bindings and a compile_commands.json are
available, unordered-iteration is checked on the AST (range-for/iterator
loops with an unordered range type — no false positives from comments or
names). Everywhere else a conservative regex engine runs; both engines see
the same suppressions. The regex engine is the one exercised by
tools/fc_lint_test.py, so CI behavior never depends on libclang presence.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Files where each rule does NOT apply (repo-relative, regex).
ALLOWLIST = {
    "raw-random": [r"^src/common/random\.(h|cc)$"],
    "raw-clock": [r"^src/common/stopwatch\.h$", r"^src/common/random\.(h|cc)$"],
    "raw-intrinsics": [r"^src/common/simd\.h$"],
}

# unordered-iteration only applies to canonical-order code paths.
CANONICAL_PATHS = (
    r"(dump|checkpoint|audit|render|hash|text_io|binary_io|serializ)"
)

SUPPRESS_RE = re.compile(
    r"//\s*fc-lint:\s*allow\(([A-Za-z0-9_,\s-]+)\)\s*:?\s*(.*)"
)

# A line comment or the tail of one; stripped before rule matching.
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
CHAR_RE = re.compile(r"'(?:[^'\\]|\\.)'")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;({=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;]*?:\s*([^)]+)\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")

RULES = ("unordered-iteration", "raw-random", "raw-clock", "raw-assert",
         "no-cout", "raw-intrinsics")

RAW_RANDOM_RES = [
    (re.compile(r"(?<![\w.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "wall clock (system_clock)"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "wall clock (time())"),
    (re.compile(r"\b(?:localtime|gmtime|gettimeofday|clock_gettime)\s*\("),
     "wall clock"),
]
RAW_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|high_resolution_clock)\s*::\s*now\b")
RAW_ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")
NO_COUT_RE = re.compile(r"\bstd\s*::\s*cout\b")
RAW_INTRINSICS_RES = [
    (re.compile(r"#\s*include\s*[<\"](?:immintrin|x86intrin|emmintrin|"
                r"smmintrin|tmmintrin|nmmintrin|wmmintrin|avxintrin|"
                r"avx2intrin|arm_neon)\.h[>\"]"),
     "SIMD intrinsics header"),
    (re.compile(r"\b_mm(?:256|512)?_\w+\s*\("), "x86 SIMD intrinsic"),
    (re.compile(r"\b(?:vld|vst)[1-4]q?_\w+\s*\("), "NEON intrinsic"),
]


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rel(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO).as_posix()
    except ValueError:
        return path.as_posix()


def rule_applies(rule: str, relpath: str) -> bool:
    for pattern in ALLOWLIST.get(rule, []):
        if re.search(pattern, relpath):
            return False
    if rule == "unordered-iteration":
        return re.search(CANONICAL_PATHS, relpath) is not None
    return True


def suppressions_for(lines, index):
    """Yields (rule, reason, line_no) suppressions covering line `index`."""
    for at in (index, index - 1):
        if at < 0:
            continue
        m = SUPPRESS_RE.search(lines[at])
        if m:
            rules = [r.strip() for r in m.group(1).split(",")]
            yield rules, m.group(2).strip(), at + 1


def strip_code(line: str) -> str:
    """Removes strings, char literals, and comments so rule regexes only
    see code. (Block comments are handled line-wise by the caller.)"""
    line = STRING_RE.sub('""', line)
    line = CHAR_RE.sub("''", line)
    return LINE_COMMENT_RE.sub("", line)


def check_file_regex(path: Path, active_rules, findings):
    relpath = rel(path)
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()

    # Names of locals declared with unordered types (file-wide; the regex
    # engine does not track scopes — conservative is fine for a lint).
    unordered_vars = set()
    if "unordered-iteration" in active_rules and rule_applies(
            "unordered-iteration", relpath):
        for line in lines:
            code = strip_code(line)
            m = UNORDERED_DECL_RE.search(code)
            if m:
                unordered_vars.add(m.group(1))

    in_block_comment = False
    used_suppressions = set()
    for i, raw in enumerate(lines):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        while start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
            start = line.find("/*")
        code = strip_code(line)

        def emit(rule, message):
            if rule not in active_rules or not rule_applies(rule, relpath):
                return
            for rules, reason, sline in suppressions_for(lines, i):
                if rule in rules:
                    used_suppressions.add(sline)
                    if not reason:
                        findings.append(Finding(
                            relpath, sline, rule,
                            "suppression needs a justification: "
                            "// fc-lint: allow(%s): <why>" % rule))
                    return
            findings.append(Finding(relpath, i + 1, rule, message))

        if "unordered-iteration" in active_rules:
            m = RANGE_FOR_RE.search(code)
            range_expr = m.group(1) if m else ""
            if "unordered" in range_expr or any(
                    re.search(r"\b%s\b" % re.escape(v), range_expr)
                    for v in unordered_vars):
                emit("unordered-iteration",
                     "iteration over an unordered container in a "
                     "canonical-order path; use a sorted view "
                     "(SortedCells()-style) instead")
            else:
                m = BEGIN_CALL_RE.search(code)
                if m and m.group(1) in unordered_vars:
                    emit("unordered-iteration",
                         "iterator walk over unordered container "
                         f"'{m.group(1)}' in a canonical-order path")

        for pattern, what in RAW_RANDOM_RES:
            if pattern.search(code):
                emit("raw-random",
                     f"{what} outside src/common/random.*; use the seeded "
                     "RNG / schedule-provided timestamps")
                break
        if RAW_CLOCK_RE.search(code):
            emit("raw-clock",
                 "raw monotonic clock outside src/common/stopwatch.h; "
                 "time through Stopwatch or TraceSpan")
        if RAW_ASSERT_RE.search(code):
            emit("raw-assert",
                 "raw assert() compiles out under NDEBUG; use FC_CHECK "
                 "(always on) or FC_AUDIT (audit tier)")
        if NO_COUT_RE.search(code):
            emit("no-cout",
                 "std::cout in library code corrupts tool stdout; use "
                 "common/logging.h or return the string")
        for pattern, what in RAW_INTRINSICS_RES:
            if pattern.search(code):
                emit("raw-intrinsics",
                     f"{what} outside src/common/simd.h; add or extend a "
                     "kernel there (with its scalar fallback) instead")
                break


def try_libclang(paths, compile_commands, active_rules, findings):
    """AST-accurate unordered-iteration pass. Returns True when it ran (the
    regex engine then skips that one rule); any failure falls back."""
    try:
        from clang import cindex  # noqa: F401
    except Exception:
        return False
    try:
        db_dir = Path(compile_commands).resolve().parent
        db = cindex.CompilationDatabase.fromDirectory(str(db_dir))
        index = cindex.Index.create()
    except Exception:
        return False

    wanted = {p.resolve() for p in paths if p.suffix in (".cc", ".cpp")}
    checked = False
    for path in sorted(wanted):
        relpath = rel(path)
        if not rule_applies("unordered-iteration", relpath):
            continue
        commands = db.getCompileCommands(str(path))
        if not commands:
            continue
        args = [a for a in list(commands[0].arguments)[1:-1]
                if a not in ("-c", "-o", str(path))]
        try:
            tu = index.parse(str(path), args=args)
        except Exception:
            continue
        checked = True
        lines = path.read_text(encoding="utf-8",
                               errors="replace").splitlines()

        def visit(node):
            if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(node.get_children())
                if children:
                    range_type = children[-2].type.spelling if len(
                        children) >= 2 else ""
                    if "unordered_" in range_type:
                        i = node.location.line - 1
                        for rules, reason, sline in suppressions_for(
                                lines, i):
                            if "unordered-iteration" in rules:
                                if not reason:
                                    findings.append(Finding(
                                        relpath, sline,
                                        "unordered-iteration",
                                        "suppression needs a "
                                        "justification"))
                                return
                        findings.append(Finding(
                            relpath, node.location.line,
                            "unordered-iteration",
                            f"range-for over '{range_type}' in a "
                            "canonical-order path"))
            for child in node.get_children():
                if child.location.file and Path(
                        str(child.location.file)).resolve() == path:
                    visit(child)

        visit(tu.cursor)
    return checked


def collect_files(paths):
    files = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.h")))
            files.extend(sorted(path.rglob("*.cc")))
            files.extend(sorted(path.rglob("*.cpp")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"fc_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src/)")
    parser.add_argument("--rules", default=",".join(RULES),
                        help="comma-separated rule subset to run")
    parser.add_argument("--compile-commands",
                        default=str(REPO / "build" / "compile_commands.json"),
                        help="compilation database for the libclang engine")
    parser.add_argument("--no-libclang", action="store_true",
                        help="force the regex engine")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    active_rules = set()
    for r in args.rules.split(","):
        r = r.strip()
        if r and r not in RULES:
            print(f"fc_lint: unknown rule '{r}'", file=sys.stderr)
            return 2
        if r:
            active_rules.add(r)

    paths = args.paths if args.paths else [str(REPO / "src")]
    files = collect_files(paths)

    findings = []
    regex_rules = set(active_rules)
    if (not args.no_libclang and "unordered-iteration" in active_rules
            and Path(args.compile_commands).is_file()):
        if try_libclang(files, args.compile_commands, active_rules,
                        findings):
            # Headers still go through the regex engine (no TU of their
            # own); .cc files were AST-checked.
            pass

    for path in files:
        check_file_regex(path, regex_rules, findings)

    # The two engines can overlap on .cc files; report each site once.
    seen = set()
    unique = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        key = (f.path, f.line, f.rule)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)

    for f in unique:
        print(f, file=sys.stderr)
    print(f"fc_lint: {len(files)} files scanned, {len(unique)} finding(s)",
          file=sys.stderr)
    return 1 if unique else 0


if __name__ == "__main__":
    sys.exit(main())
