// Figure 6: runtime of Shared / Cubing / Basic vs database size
// (100k..1M paths at scale 1; delta = 1%, d = 5).
//
// Paper shape: shared and cubing close on small inputs, shared's slope
// smaller; basic only runnable on the two smallest sizes.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

Summary& GetSummary() {
  static Summary summary(
      "fig6_db_size", "database size (paths)",
      "Figure 6 - runtime vs database size (delta=1%, d=5)",
      "shared <= cubing with a smaller slope; basic explodes beyond the "
      "two smallest sizes");
  return summary;
}

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

void RegisterAll() {
  const std::vector<int> sizes = {100, 200, 400, 700, 1000};
  for (size_t i = 0; i < sizes.size(); ++i) {
    const size_t n = ScaledN(sizes[i]);
    const uint32_t minsup = std::max<uint32_t>(1, static_cast<uint32_t>(n / 100));
    const std::string x = std::to_string(n) + " paths";

    struct Algo {
      const char* name;
      MinerRun (*fn)(const PathDatabase&, uint32_t);
      bool enabled;
      const char* note;
    };
    const bool basic_ok = i < 2 || ForceBasic();
    const Algo algos[] = {
        {"shared", &RunShared, true, ""},
        {"cubing", &RunCubing, true, ""},
        {"basic", &RunBasic, basic_ok,
         "skipped: candidate explosion (paper: basic only ran at the two "
         "smallest sizes); set FLOWCUBE_BENCH_BASIC=1"},
    };
    for (const Algo& algo : algos) {
      if (!algo.enabled) {
        GetSummary().Add(Row{x, algo.name, false, MinerRun{}, algo.note});
        continue;
      }
      const std::string bench_name =
          std::string("fig6/") + algo.name + "/N=" + std::to_string(n);
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [n, minsup, x, algo](benchmark::State& state) {
            const PathDatabase& db = Cache().Get(BaselineConfig(), n);
            for (auto _ : state) {
              const MinerRun run = algo.fn(db, minsup);
              state.SetIterationTime(run.seconds);
              state.counters["candidates"] =
                  static_cast<double>(run.candidates);
              state.counters["frequent"] = static_cast<double>(run.frequent);
              GetSummary().Add(Row{x, algo.name, true, run, ""});
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  GetSummary().Print();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
