// Ablation: the contribution of each of Shared's candidate-pruning
// optimizations (paper Section 5). Starting from the full Shared
// configuration, each optimization is disabled in isolation, and each is
// enabled in isolation on top of Basic.
//
// Expected: the linkability/one-per-dimension rule and the ancestor rule
// carry most of the candidate reduction; pre-counting trades a cheap extra
// length-2 count for early pruning (roughly cost-neutral in RAM — it was a
// memory win on 2006 hardware).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

struct Variant {
  const char* name;
  bool precount;
  bool unlinkable;
  bool ancestors;
};

constexpr Variant kVariants[] = {
    {"shared(all)", true, true, true},
    {"-precount", false, true, true},
    {"-unlinkable", true, false, true},
    {"-ancestors", true, true, false},
    {"+precount_only", true, false, false},
    {"+unlinkable_only", false, true, false},
    {"+ancestors_only", false, false, true},
    {"basic(none)", false, false, false},
};

Summary& GetSummary() {
  static Summary summary(
      "ablation_pruning", "pruning rules enabled",
      "Ablation - Shared's pruning optimizations (N=100k@scale1, delta=1%, "
      "d=5)",
      "unlinkable + ancestor rules carry most of the reduction; precount "
      "is memory-motivated");
  return summary;
}

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

MinerRun RunVariant(const PathDatabase& db, uint32_t minsup,
                    const Variant& v) {
  TraceSpan setup_span("bench.setup");
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());
  SharedMinerOptions opts;
  opts.min_support = minsup;
  opts.prune_precount = v.precount;
  opts.prune_unlinkable = v.unlinkable;
  opts.prune_ancestors = v.ancestors;
  SharedMiner miner(tdb, opts);
  const double setup = setup_span.Stop();
  TraceSpan mine_span("bench.mine.variant");
  SharedMiningOutput out = miner.Run();
  const double mine = mine_span.Stop();
  return MinerRun{setup + mine, setup, mine, out.stats.TotalCandidates(),
                  static_cast<uint64_t>(out.frequent.size()),
                  out.stats.passes, out.stats.candidates_per_length};
}

void RegisterAll() {
  const size_t n = ScaledN(100);
  const uint32_t minsup =
      std::max<uint32_t>(1, static_cast<uint32_t>(n / 100));
  for (const Variant& v : kVariants) {
    const std::string bench_name = std::string("ablation/") + v.name;
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [n, minsup, v](benchmark::State& state) {
          const PathDatabase& db = Cache().Get(BaselineConfig(), n);
          for (auto _ : state) {
            const MinerRun run = RunVariant(db, minsup, v);
            state.SetIterationTime(run.seconds);
            state.counters["candidates"] =
                static_cast<double>(run.candidates);
            GetSummary().Add(Row{v.name, "shared*", true, run, ""});
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  GetSummary().Print();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
