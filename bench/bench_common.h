#ifndef FLOWCUBE_BENCH_BENCH_COMMON_H_
#define FLOWCUBE_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benchmarks. Every figure binary
// sweeps one knob, runs the algorithms end to end (transformation included,
// as in the paper's measurements), and prints a paper-style series table.
//
// Scaling: the paper's baseline is N = 100,000 paths on a 2004 Pentium IV.
// FLOWCUBE_BENCH_SCALE (default 0.2) multiplies every N so the whole suite
// finishes in minutes; shapes are stable across scales. Set
// FLOWCUBE_BENCH_SCALE=1 for paper-scale runs and FLOWCUBE_BENCH_BASIC=1 to
// force algorithm Basic on the configurations where the paper itself could
// not run it.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "cube/cubing_miner.h"
#include "gen/path_generator.h"
#include "mining/shared_miner.h"

namespace flowcube::bench {

inline double ScaleFromEnv() {
  const char* s = std::getenv("FLOWCUBE_BENCH_SCALE");
  if (s == nullptr) return 0.2;
  const double v = std::atof(s);
  return v > 0 ? v : 0.2;
}

inline bool ForceBasic() {
  const char* s = std::getenv("FLOWCUBE_BENCH_BASIC");
  return s != nullptr && s[0] == '1';
}

// The paper's baseline point is 100k paths; ScaledN(100) is that point
// under the current scale.
inline size_t ScaledN(int thousands) {
  return static_cast<size_t>(thousands * 1000 * ScaleFromEnv());
}

// The calibrated baseline workload (Section 6.1 knobs). Its multi-level
// frequent-pattern density was tuned so that the candidate-count profile is
// in the ballpark of the paper's Figure 11 (shared counting a few tens of
// thousands of candidates at the baseline point, basic roughly an order of
// magnitude more).
inline GeneratorConfig BaselineConfig(int num_dimensions = 5) {
  GeneratorConfig cfg;
  cfg.num_dimensions = num_dimensions;
  cfg.dim_distinct_per_level = {4, 4, 6};  // the paper's dataset "b"
  cfg.num_sequences = 100;
  cfg.num_distinct_durations = 15;
  cfg.dim_zipf_alpha = 0.5;
  cfg.location_zipf_alpha = 0.5;
  cfg.sequence_zipf_alpha = 0.5;
  cfg.duration_zipf_alpha = 0.5;
  cfg.seed = 20060912;  // VLDB'06 opening day
  return cfg;
}

struct MinerRun {
  double seconds = 0.0;
  uint64_t candidates = 0;
  uint64_t frequent = 0;
  int passes = 0;
  std::vector<uint64_t> candidates_per_length;
};

// End-to-end runs (transformation of the path database included, as the
// paper's end-to-end timings are).
inline MinerRun RunShared(const PathDatabase& db, uint32_t minsup) {
  Stopwatch watch;
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());
  SharedMinerOptions opts;
  opts.min_support = minsup;
  SharedMiner miner(tdb, opts);
  SharedMiningOutput out = miner.Run();
  return MinerRun{watch.ElapsedSeconds(), out.stats.TotalCandidates(),
                  static_cast<uint64_t>(out.frequent.size()),
                  out.stats.passes, out.stats.candidates_per_length};
}

inline MinerRun RunBasic(const PathDatabase& db, uint32_t minsup) {
  Stopwatch watch;
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());
  SharedMinerOptions opts;
  opts.min_support = minsup;
  opts.prune_precount = false;
  opts.prune_unlinkable = false;
  opts.prune_ancestors = false;
  SharedMiner miner(tdb, opts);
  SharedMiningOutput out = miner.Run();
  return MinerRun{watch.ElapsedSeconds(), out.stats.TotalCandidates(),
                  static_cast<uint64_t>(out.frequent.size()),
                  out.stats.passes, out.stats.candidates_per_length};
}

inline MinerRun RunCubing(const PathDatabase& db, uint32_t minsup) {
  Stopwatch watch;
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());
  CubingMiner miner(db, tdb, CubingMinerOptions{minsup});
  SharedMiningOutput out = miner.Run();
  return MinerRun{watch.ElapsedSeconds(), out.stats.TotalCandidates(),
                  static_cast<uint64_t>(out.frequent.size()),
                  out.stats.passes, out.stats.candidates_per_length};
}

// One row of a sweep table.
struct Row {
  std::string x;
  std::string algo;
  bool ran = false;
  MinerRun run;
  std::string note;
};

class Summary {
 public:
  Summary(std::string title, std::string expectation)
      : title_(std::move(title)), expectation_(std::move(expectation)) {}

  void Add(Row row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("(scale=%.2f; paper expectation: %s)\n", ScaleFromEnv(),
                expectation_.c_str());
    std::printf("%-18s %-8s %12s %14s %12s %7s\n", "x", "algo", "seconds",
                "candidates", "frequent", "passes");
    for (const Row& r : rows_) {
      if (r.ran) {
        std::printf("%-18s %-8s %12.3f %14llu %12llu %7d\n", r.x.c_str(),
                    r.algo.c_str(), r.run.seconds,
                    static_cast<unsigned long long>(r.run.candidates),
                    static_cast<unsigned long long>(r.run.frequent),
                    r.run.passes);
      } else {
        std::printf("%-18s %-8s %12s   %s\n", r.x.c_str(), r.algo.c_str(),
                    "n/a", r.note.c_str());
      }
    }
  }

 private:
  std::string title_;
  std::string expectation_;
  std::vector<Row> rows_;
};

// Cache of generated databases so the three algorithms of one sweep point
// share one dataset.
class DbCache {
 public:
  const PathDatabase& Get(const GeneratorConfig& cfg, size_t n) {
    const std::string key = Key(cfg, n);
    auto it = dbs_.find(key);
    if (it == dbs_.end()) {
      PathGenerator gen(cfg);
      it = dbs_.emplace(key,
                        std::make_unique<PathDatabase>(gen.Generate(n)))
               .first;
    }
    return *it->second;
  }

 private:
  static std::string Key(const GeneratorConfig& cfg, size_t n) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%d|%d|%d|%d|%.2f|%zu|%llu",
                  cfg.num_dimensions, cfg.num_sequences,
                  cfg.num_distinct_durations,
                  cfg.dim_distinct_per_level.empty()
                      ? 0
                      : cfg.dim_distinct_per_level[0],
                  cfg.dim_zipf_alpha, n,
                  static_cast<unsigned long long>(cfg.seed));
    return buf;
  }

  std::map<std::string, std::unique_ptr<PathDatabase>> dbs_;
};

}  // namespace flowcube::bench

#endif  // FLOWCUBE_BENCH_BENCH_COMMON_H_
