#ifndef FLOWCUBE_BENCH_BENCH_COMMON_H_
#define FLOWCUBE_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benchmarks. Every figure binary
// sweeps one knob, runs the algorithms end to end (transformation included,
// as in the paper's measurements), and prints a paper-style series table.
//
// Scaling: the paper's baseline is N = 100,000 paths on a 2004 Pentium IV.
// FLOWCUBE_BENCH_SCALE (default 0.2) multiplies every N so the whole suite
// finishes in minutes; shapes are stable across scales. Set
// FLOWCUBE_BENCH_SCALE=1 for paper-scale runs and FLOWCUBE_BENCH_BASIC=1 to
// force algorithm Basic on the configurations where the paper itself could
// not run it.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "cube/cubing_miner.h"
#include "gen/path_generator.h"
#include "mining/shared_miner.h"

namespace flowcube::bench {

inline double ScaleFromEnv() {
  // Benchmark knobs are read from the main thread before any worker
  // starts, and nothing in the process calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* s = std::getenv("FLOWCUBE_BENCH_SCALE");
  if (s == nullptr) return 0.2;
  const double v = std::atof(s);
  return v > 0 ? v : 0.2;
}

inline bool ForceBasic() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): same single-threaded setup path
  const char* s = std::getenv("FLOWCUBE_BENCH_BASIC");
  return s != nullptr && s[0] == '1';
}

// ---------------------------------------------------------------------------
// Machine-readable output. Next to its stdout table every figure binary
// writes BENCH_<name>.json: run metadata (swept knob, FLOWCUBE_BENCH_SCALE,
// resolved thread count) plus one object per series row, so CI can archive
// and diff runs without scraping the tables. FLOWCUBE_BENCH_JSON_DIR
// redirects the files (default: current directory).

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One key/value pair of a JSON row, value pre-encoded.
struct JsonField {
  std::string key;
  std::string encoded;

  static JsonField Str(const char* key, const std::string& value) {
    return JsonField{key, "\"" + JsonEscape(value) + "\""};
  }
  static JsonField Num(const char* key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return JsonField{key, buf};
  }
  static JsonField Int(const char* key, uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return JsonField{key, buf};
  }
  static JsonField Bool(const char* key, bool value) {
    return JsonField{key, value ? "true" : "false"};
  }
};

class BenchJson {
 public:
  // `name` is the file stem (BENCH_<name>.json); `knob` describes what the
  // rows' x axis sweeps.
  BenchJson(std::string name, std::string knob)
      : name_(std::move(name)), knob_(std::move(knob)) {}

  void AddRow(std::vector<JsonField> fields) {
    rows_.push_back(std::move(fields));
  }

  // Serializes the document and writes BENCH_<name>.json. Returns the path
  // written (empty on I/O failure, reported on stderr).
  std::string Write() const {
    std::string out = "{\n";
    out += "  \"name\": \"" + JsonEscape(name_) + "\",\n";
    out += "  \"knob\": \"" + JsonEscape(knob_) + "\",\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  \"scale\": %.17g,\n", ScaleFromEnv());
    out += buf;
    std::snprintf(buf, sizeof(buf), "  \"threads\": %zu,\n",
                  ResolveNumThreads());
    out += buf;
    out += "  \"rows\": [";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out += r == 0 ? "\n    {" : ",\n    {";
      for (size_t f = 0; f < rows_[r].size(); ++f) {
        if (f > 0) out += ", ";
        out += "\"" + JsonEscape(rows_[r][f].key) +
               "\": " + rows_[r][f].encoded;
      }
      out += "}";
    }
    out += rows_.empty() ? "]" : "\n  ]";
    // When metrics output is on, archive the full registry with the run so
    // one artifact carries both the series and the counters behind it.
    if (metrics_format() != MetricsFormat::kNone) {
      out += ",\n  \"metrics\": " + MetricRegistry::Global().RenderJson();
    }
    out += "\n}\n";

    std::string path = "BENCH_" + name_ + ".json";
    // NOLINTNEXTLINE(concurrency-mt-unsafe): report writing is post-run,
    // single-threaded, and nothing in the process calls setenv
    if (const char* dir = std::getenv("FLOWCUBE_BENCH_JSON_DIR")) {
      if (dir[0] != '\0') path = std::string(dir) + "/" + path;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return "";
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  std::string knob_;
  std::vector<std::vector<JsonField>> rows_;
};

// The paper's baseline point is 100k paths; ScaledN(100) is that point
// under the current scale.
inline size_t ScaledN(int thousands) {
  return static_cast<size_t>(thousands * 1000 * ScaleFromEnv());
}

// The calibrated baseline workload (Section 6.1 knobs). Its multi-level
// frequent-pattern density was tuned so that the candidate-count profile is
// in the ballpark of the paper's Figure 11 (shared counting a few tens of
// thousands of candidates at the baseline point, basic roughly an order of
// magnitude more).
inline GeneratorConfig BaselineConfig(int num_dimensions = 5) {
  GeneratorConfig cfg;
  cfg.num_dimensions = num_dimensions;
  cfg.dim_distinct_per_level = {4, 4, 6};  // the paper's dataset "b"
  cfg.num_sequences = 100;
  cfg.num_distinct_durations = 15;
  cfg.dim_zipf_alpha = 0.5;
  cfg.location_zipf_alpha = 0.5;
  cfg.sequence_zipf_alpha = 0.5;
  cfg.duration_zipf_alpha = 0.5;
  cfg.seed = 20060912;  // VLDB'06 opening day
  return cfg;
}

struct MinerRun {
  // End-to-end wall time (seconds_setup + seconds_mine). Kept as the
  // table's headline number since the paper reports end-to-end runtimes.
  double seconds = 0.0;
  // Phase split: setup is plan resolution + database transformation (work
  // every algorithm repeats identically); mine is the algorithm itself.
  double seconds_setup = 0.0;
  double seconds_mine = 0.0;
  uint64_t candidates = 0;
  uint64_t frequent = 0;
  int passes = 0;
  std::vector<uint64_t> candidates_per_length;
};

// End-to-end runs. The paper's timings include the transformation, but the
// phases are timed separately (as trace spans "bench.setup" /
// "bench.mine.<algo>") so rows can report where the time went instead of
// re-charging identical setup work to every algorithm.
inline MinerRun RunShared(const PathDatabase& db, uint32_t minsup) {
  TraceSpan setup_span("bench.setup");
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());
  SharedMinerOptions opts;
  opts.min_support = minsup;
  SharedMiner miner(tdb, opts);
  const double setup = setup_span.Stop();
  TraceSpan mine_span("bench.mine.shared");
  SharedMiningOutput out = miner.Run();
  const double mine = mine_span.Stop();
  return MinerRun{setup + mine, setup, mine, out.stats.TotalCandidates(),
                  static_cast<uint64_t>(out.frequent.size()),
                  out.stats.passes, out.stats.candidates_per_length};
}

inline MinerRun RunBasic(const PathDatabase& db, uint32_t minsup) {
  TraceSpan setup_span("bench.setup");
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());
  SharedMinerOptions opts;
  opts.min_support = minsup;
  opts.prune_precount = false;
  opts.prune_unlinkable = false;
  opts.prune_ancestors = false;
  SharedMiner miner(tdb, opts);
  const double setup = setup_span.Stop();
  TraceSpan mine_span("bench.mine.basic");
  SharedMiningOutput out = miner.Run();
  const double mine = mine_span.Stop();
  return MinerRun{setup + mine, setup, mine, out.stats.TotalCandidates(),
                  static_cast<uint64_t>(out.frequent.size()),
                  out.stats.passes, out.stats.candidates_per_length};
}

inline MinerRun RunCubing(const PathDatabase& db, uint32_t minsup) {
  TraceSpan setup_span("bench.setup");
  MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());
  CubingMiner miner(db, tdb, CubingMinerOptions{minsup});
  const double setup = setup_span.Stop();
  TraceSpan mine_span("bench.mine.cubing");
  SharedMiningOutput out = miner.Run();
  const double mine = mine_span.Stop();
  return MinerRun{setup + mine, setup, mine, out.stats.TotalCandidates(),
                  static_cast<uint64_t>(out.frequent.size()),
                  out.stats.passes, out.stats.candidates_per_length};
}

// One row of a sweep table.
struct Row {
  std::string x;
  std::string algo;
  bool ran = false;
  MinerRun run;
  std::string note;
};

class Summary {
 public:
  // `name` is the JSON file stem, `knob` the swept x axis (both feed
  // BENCH_<name>.json); `title` / `expectation` head the stdout table.
  Summary(std::string name, std::string knob, std::string title,
          std::string expectation)
      : name_(std::move(name)),
        knob_(std::move(knob)),
        title_(std::move(title)),
        expectation_(std::move(expectation)) {}

  void Add(Row row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("(scale=%.2f; paper expectation: %s)\n", ScaleFromEnv(),
                expectation_.c_str());
    std::printf("%-18s %-8s %12s %10s %14s %12s %7s\n", "x", "algo",
                "seconds", "mine(s)", "candidates", "frequent", "passes");
    for (const Row& r : rows_) {
      if (r.ran) {
        std::printf("%-18s %-8s %12.3f %10.3f %14llu %12llu %7d\n",
                    r.x.c_str(), r.algo.c_str(), r.run.seconds,
                    r.run.seconds_mine,
                    static_cast<unsigned long long>(r.run.candidates),
                    static_cast<unsigned long long>(r.run.frequent),
                    r.run.passes);
      } else {
        std::printf("%-18s %-8s %12s   %s\n", r.x.c_str(), r.algo.c_str(),
                    "n/a", r.note.c_str());
      }
    }
    WriteJson();
  }

  void WriteJson() const {
    BenchJson json(name_, knob_);
    for (const Row& r : rows_) {
      json.AddRow({JsonField::Str("x", r.x), JsonField::Str("algo", r.algo),
                   JsonField::Bool("ran", r.ran),
                   JsonField::Num("seconds", r.run.seconds),
                   JsonField::Num("seconds_setup", r.run.seconds_setup),
                   JsonField::Num("seconds_mine", r.run.seconds_mine),
                   JsonField::Int("candidates", r.run.candidates),
                   JsonField::Int("frequent", r.run.frequent),
                   JsonField::Int("passes", static_cast<uint64_t>(r.run.passes)),
                   JsonField::Str("note", r.note)});
    }
    json.Write();
  }

 private:
  std::string name_;
  std::string knob_;
  std::string title_;
  std::string expectation_;
  std::vector<Row> rows_;
};

// Cache of generated databases so the three algorithms of one sweep point
// share one dataset.
class DbCache {
 public:
  const PathDatabase& Get(const GeneratorConfig& cfg, size_t n) {
    const std::string key = Key(cfg, n);
    auto it = dbs_.find(key);
    if (it == dbs_.end()) {
      PathGenerator gen(cfg);
      it = dbs_.emplace(key,
                        std::make_unique<PathDatabase>(gen.Generate(n)))
               .first;
    }
    return *it->second;
  }

 private:
  static std::string Key(const GeneratorConfig& cfg, size_t n) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%d|%d|%d|%d|%.2f|%zu|%llu",
                  cfg.num_dimensions, cfg.num_sequences,
                  cfg.num_distinct_durations,
                  cfg.dim_distinct_per_level.empty()
                      ? 0
                      : cfg.dim_distinct_per_level[0],
                  cfg.dim_zipf_alpha, n,
                  static_cast<unsigned long long>(cfg.seed));
    return buf;
  }

  std::map<std::string, std::unique_ptr<PathDatabase>> dbs_;
};

}  // namespace flowcube::bench

#endif  // FLOWCUBE_BENCH_BENCH_COMMON_H_
