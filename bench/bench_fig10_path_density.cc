// Figure 10: runtime vs path density — the number of distinct valid
// location sequences varies from 10 (dense) to 150 (sparse)
// (N = 100k at scale 1, delta = 1%, d = 5).
//
// Paper shape: dense paths make mining expensive for both algorithms and
// give shared a large advantage; basic could not run at all. In our
// in-memory reproduction shared's cost falls steeply with sparsity while
// cubing's stays flat (its tid-list handling dominates) — see
// EXPERIMENTS.md for the discussion of the densest point.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

Summary& GetSummary() {
  static Summary summary(
      "fig10_path_density", "path density (distinct sequences)",
      "Figure 10 - runtime vs path density (N=100k@scale1, delta=1%, d=5)",
      "mining cost falls as paths get sparser; cubing pays a flat "
      "per-cell overhead; basic unrunnable (candidate explosion)");
  return summary;
}

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

void RegisterAll() {
  const size_t n = ScaledN(100);
  const uint32_t minsup =
      std::max<uint32_t>(1, static_cast<uint32_t>(n / 100));
  for (int sequences : {10, 25, 50, 100, 150}) {
    GeneratorConfig cfg = BaselineConfig();
    cfg.num_sequences = sequences;
    const std::string x = std::to_string(sequences) + " seqs";

    struct Algo {
      const char* name;
      MinerRun (*fn)(const PathDatabase&, uint32_t);
      bool enabled;
    };
    const Algo algos[] = {
        {"shared", &RunShared, true},
        {"cubing", &RunCubing, true},
        {"basic", &RunBasic, ForceBasic()},
    };
    for (const Algo& algo : algos) {
      if (!algo.enabled) {
        GetSummary().Add(Row{x, algo.name, false, MinerRun{},
                             "skipped: candidate explosion on dense paths "
                             "(paper could not run basic here either)"});
        continue;
      }
      const std::string bench_name =
          std::string("fig10/") + algo.name + "/seqs=" +
          std::to_string(sequences);
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [n, minsup, x, cfg, algo](benchmark::State& state) {
            const PathDatabase& db = Cache().Get(cfg, n);
            for (auto _ : state) {
              const MinerRun run = algo.fn(db, minsup);
              state.SetIterationTime(run.seconds);
              state.counters["candidates"] =
                  static_cast<double>(run.candidates);
              GetSummary().Add(Row{x, algo.name, true, run, ""});
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  GetSummary().Print();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
