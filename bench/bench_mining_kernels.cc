// Mining-kernel microbench: candidate-counting throughput per counting
// backend and per ISA level (DESIGN.md §13), isolated from the rest of the
// mining loop. Two workload shapes bracket the Apriori passes: the pass-2
// pair candidates (many candidates, chain verify trivial) and the pass-3
// triple candidates (fewer candidates, subset verify active). Rows report
// counting seconds and candidate-transaction evaluations per second; the
// scalar horizontal rows are the baseline the SIMD and tidlist rows are
// judged against (acceptance: >= 2x candidates/sec for one of them).

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "flowcube/plan.h"
#include "mining/apriori.h"
#include "mining/counting_backend.h"
#include "mining/transform.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

struct KernelWorkload {
  std::vector<std::vector<ItemId>> txns;
  std::vector<std::span<const ItemId>> views;
  std::vector<Itemset> pair_cands;
  std::vector<Itemset> triple_cands;
  uint32_t minsup = 0;
};

// Counter loaded with `cands`, finalized, counts at zero.
void LoadCounter(const std::vector<Itemset>& cands, CandidateCounter* c) {
  c->Clear();
  c->Reserve(cands.size());
  for (const Itemset& cand : cands) c->Add(cand);
  c->Finalize();
}

// Builds the transaction views plus the real pass-2 and pass-3 candidate
// sets of a plain (unpruned) Apriori over the baseline workload — the exact
// inputs CandidateCounter sees inside the miners.
KernelWorkload& Workload() {
  static KernelWorkload* w = [] {
    auto* out = new KernelWorkload();
    const size_t n = ScaledN(100);
    out->minsup = std::max<uint32_t>(1, static_cast<uint32_t>(n / 100));
    PathGenerator gen(BaselineConfig());
    const PathDatabase db = gen.Generate(n);
    MiningPlan plan = MiningPlan::Default(db.schema()).value();
    const TransformedDatabase tdb =
        std::move(TransformPathDatabase(db, plan).value());
    out->txns.reserve(tdb.transactions().size());
    for (const Transaction& t : tdb.transactions()) out->txns.push_back(t.items);
    out->views.reserve(out->txns.size());
    for (const auto& t : out->txns) out->views.emplace_back(t);

    // Pass 1: frequent items.
    std::vector<uint32_t> item_counts;
    for (const auto& t : out->txns) {
      for (ItemId id : t) {
        if (item_counts.size() <= id) item_counts.resize(id + 1, 0);
        item_counts[id]++;
      }
    }
    std::vector<Itemset> frequent_1;
    for (ItemId id = 0; id < item_counts.size(); ++id) {
      if (item_counts[id] >= out->minsup) frequent_1.push_back({id});
    }
    out->pair_cands = AprioriJoin(frequent_1);

    // Pass 2 counts (any backend; this is setup) -> pass-3 candidates.
    CandidateCounter counter;
    LoadCounter(out->pair_cands, &counter);
    CountAllTransactions(out->views, CountBackend::kSimd, nullptr, 256,
                         &counter);
    std::vector<Itemset> frequent_2;
    for (size_t i = 0; i < counter.size(); ++i) {
      if (counter.count(i) >= out->minsup) {
        frequent_2.push_back(counter.candidate(i));
      }
    }
    std::sort(frequent_2.begin(), frequent_2.end());
    const std::unordered_set<Itemset, ItemsetHash> frequent_set(
        frequent_2.begin(), frequent_2.end());
    for (Itemset& cand : AprioriJoin(frequent_2)) {
      if (AllSubsetsFrequent(cand, frequent_set)) {
        out->triple_cands.push_back(std::move(cand));
      }
    }
    return out;
  }();
  return *w;
}

BenchJson& Json() {
  static BenchJson json("mining_kernels", "counting backend / ISA level");
  return json;
}

struct Variant {
  std::string name;  // row label: backend or backend/level
  CountBackend backend;
  simd::Level level;  // horizontal backends only
};

std::vector<Variant> Variants() {
  std::vector<Variant> v = {
      {"scalar", CountBackend::kScalar, simd::Level::kScalar}};
  if (simd::ActiveLevel() != simd::Level::kScalar) {
    v.push_back({"simd/sse2", CountBackend::kSimd, simd::Level::kSse2});
    if (simd::ActiveLevel() != simd::Level::kSse2) {
      v.push_back({std::string("simd/") + simd::LevelName(simd::ActiveLevel()),
                   CountBackend::kSimd, simd::ActiveLevel()});
    }
  }
  v.push_back({"tidlist", CountBackend::kTidlist, simd::Level::kScalar});
  return v;
}

// One timed counting pass: rebuild the counter (outside the clock), then
// count every transaction against every candidate.
double TimedPass(const std::vector<Itemset>& cands, const Variant& variant) {
  KernelWorkload& w = Workload();
  CandidateCounter counter;
  LoadCounter(cands, &counter);
  Stopwatch timer;
  if (variant.backend == CountBackend::kTidlist) {
    CountAllTransactions(w.views, CountBackend::kTidlist, nullptr, 256,
                         &counter);
  } else {
    for (const auto& txn : w.views) {
      counter.CountTransaction(txn, variant.level);
    }
  }
  return timer.ElapsedSeconds();
}

void RegisterAll() {
  for (const Variant& variant : Variants()) {
    for (int shape_idx = 0; shape_idx < 2; ++shape_idx) {
      const char* shape = shape_idx == 0 ? "pairs" : "triples";
      const std::string bench_name =
          std::string("kernels/") + shape + "/" + variant.name;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [variant, shape, shape_idx](benchmark::State& state) {
            KernelWorkload& w = Workload();
            const std::vector<Itemset>& cands =
                shape_idx == 0 ? w.pair_cands : w.triple_cands;
            for (auto _ : state) {
              const double seconds = TimedPass(cands, variant);
              state.SetIterationTime(seconds);
              const double evals = static_cast<double>(cands.size()) *
                                   static_cast<double>(w.views.size());
              const double cand_per_sec =
                  seconds > 0 ? static_cast<double>(cands.size()) / seconds
                              : 0.0;
              state.counters["cand_per_sec"] = cand_per_sec;
              Json().AddRow(
                  {JsonField::Str("x", shape),
                   JsonField::Str("backend", variant.name),
                   JsonField::Num("seconds", seconds),
                   JsonField::Int("candidates", cands.size()),
                   JsonField::Int("transactions", w.views.size()),
                   JsonField::Num("candidates_per_sec", cand_per_sec),
                   JsonField::Num("evals_per_sec",
                                  seconds > 0 ? evals / seconds : 0.0)});
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  Json().Write();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
