// Figure 9: runtime vs item density — the paper's datasets a, b, c with
// (2,2,5), (4,4,6) and (5,5,10) distinct values per hierarchy level
// (N = 100k at scale 1, delta = 1%, d = 5).
//
// Paper shape: sparser dimensions (more distinct values) mean fewer
// frequent cells/segments, so every algorithm gets faster from a to c;
// basic could not run on the densest dataset a.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

Summary& GetSummary() {
  static Summary summary(
      "fig9_item_density", "item density (dataset a/b/c)",
      "Figure 9 - runtime vs item density (N=100k@scale1, delta=1%, d=5)",
      "runtime falls from dataset a to c for every algorithm; basic "
      "unrunnable on dataset a");
  return summary;
}

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

void RegisterAll() {
  const size_t n = ScaledN(100);
  const uint32_t minsup =
      std::max<uint32_t>(1, static_cast<uint32_t>(n / 100));
  struct Dataset {
    const char* name;
    std::vector<int> distinct;
  };
  const Dataset datasets[] = {
      {"a(2,2,5)", {2, 2, 5}},
      {"b(4,4,6)", {4, 4, 6}},
      {"c(5,5,10)", {5, 5, 10}},
  };
  for (const Dataset& ds : datasets) {
    GeneratorConfig cfg = BaselineConfig();
    cfg.dim_distinct_per_level = ds.distinct;
    struct Algo {
      const char* name;
      MinerRun (*fn)(const PathDatabase&, uint32_t);
      bool enabled;
    };
    const bool is_dense_a = ds.distinct[0] == 2;
    const Algo algos[] = {
        {"shared", &RunShared, true},
        {"cubing", &RunCubing, true},
        {"basic", &RunBasic, !is_dense_a || ForceBasic()},
    };
    for (const Algo& algo : algos) {
      if (!algo.enabled) {
        GetSummary().Add(Row{ds.name, algo.name, false, MinerRun{},
                             "skipped: candidate explosion (paper could not "
                             "run basic on dataset a)"});
        continue;
      }
      const std::string bench_name =
          std::string("fig9/") + algo.name + "/" + ds.name;
      const std::string x = ds.name;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [n, minsup, x, cfg, algo](benchmark::State& state) {
            const PathDatabase& db = Cache().Get(cfg, n);
            for (auto _ : state) {
              const MinerRun run = algo.fn(db, minsup);
              state.SetIterationTime(run.seconds);
              state.counters["candidates"] =
                  static_cast<double>(run.candidates);
              GetSummary().Add(Row{x, algo.name, true, run, ""});
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  GetSummary().Print();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
