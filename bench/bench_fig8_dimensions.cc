// Figure 8: runtime vs number of path-independent dimensions (2..10;
// N = 100k at scale 1, delta = 1%).
//
// Paper shape: the datasets are deliberately sparse, so all three
// algorithms stay close; runtime grows moderately with dimensionality.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

Summary& GetSummary() {
  static Summary summary(
      "fig8_dimensions", "number of dimensions",
      "Figure 8 - runtime vs number of dimensions (N=100k@scale1, "
      "delta=1%, sparse data)",
      "sparse data keeps all three algorithms comparable; moderate growth "
      "with d");
  return summary;
}

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

// The paper: "the datasets used for this experiment were quite sparse to
// prevent the number of frequent cells to explode at higher dimension
// cuboids".
GeneratorConfig SparseConfig(int dims) {
  GeneratorConfig cfg = BaselineConfig(dims);
  cfg.dim_distinct_per_level = {5, 5, 10};
  cfg.dim_zipf_alpha = 0.3;
  cfg.sequence_zipf_alpha = 0.3;
  cfg.duration_zipf_alpha = 0.3;
  cfg.num_sequences = 150;
  return cfg;
}

void RegisterAll() {
  const size_t n = ScaledN(100);
  const uint32_t minsup =
      std::max<uint32_t>(1, static_cast<uint32_t>(n / 100));
  for (int dims : {2, 4, 6, 8, 10}) {
    const std::string x = std::to_string(dims) + " dims";
    struct Algo {
      const char* name;
      MinerRun (*fn)(const PathDatabase&, uint32_t);
    };
    const Algo algos[] = {
        {"shared", &RunShared},
        {"cubing", &RunCubing},
        {"basic", &RunBasic},
    };
    for (const Algo& algo : algos) {
      const std::string bench_name =
          std::string("fig8/") + algo.name + "/d=" + std::to_string(dims);
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [n, minsup, x, dims, algo](benchmark::State& state) {
            const PathDatabase& db = Cache().Get(SparseConfig(dims), n);
            for (auto _ : state) {
              const MinerRun run = algo.fn(db, minsup);
              state.SetIterationTime(run.seconds);
              state.counters["candidates"] =
                  static_cast<double>(run.candidates);
              GetSummary().Add(Row{x, algo.name, true, run, ""});
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  GetSummary().Print();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
