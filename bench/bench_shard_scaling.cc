// Shard scaling benchmark (no paper figure — the sharded deployment is
// ours): sweeps the shard count 1 -> 8 over one fixed workload and reports,
// per point, the sharded build time (splitting the whole stream through the
// ingest splitter into per-shard incremental maintainers), the resulting
// ingest throughput, and the coordinator's query throughput / tail latency
// under concurrent closed-loop callers fanning out over the in-process
// transport.
//
// Expected shape: ingest time drops with shards only modestly (the splitter
// is single-writer; the win is per-shard cubes being smaller), while
// coordinator QPS holds roughly flat as the per-query fan-out widens —
// the merge cost grows with N but each shard answers over less data.
//
// Knobs: FLOWCUBE_SHARDS pins the sweep to one shard count;
// FLOWCUBE_SHARD_PARTITIONER selects "dims_hash" (default) or "range".
// FLOWCUBE_BENCH_SCALE scales the record count like every other bench.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "flowcube/builder.h"
#include "shard/backend.h"
#include "shard/coordinator.h"
#include "shard/ingest_splitter.h"
#include "shard/partitioner.h"
#include "shard/shard_node.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

BenchJson& Json() {
  static BenchJson json("shard_scaling", "number of shards");
  return json;
}

const char* PartitionerKind() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, pre-thread setup
  const char* s = std::getenv("FLOWCUBE_SHARD_PARTITIONER");
  return (s != nullptr && s[0] != '\0') ? s : "dims_hash";
}

// Shared workload: one generated database, ~10x the differential suite's
// size at the default scale and ~100x at scale 1.
const PathDatabase& Workload() {
  static const PathDatabase* db = [] {
    return new PathDatabase(PathGenerator(BaselineConfig(/*num_dims=*/2))
                                .Generate(std::max<size_t>(400, ScaledN(8))));
  }();
  return *db;
}

FlowCubeBuilderOptions GlobalOptions(const PathDatabase& db) {
  FlowCubeBuilderOptions options;
  options.min_support = std::max<uint32_t>(
      2, static_cast<uint32_t>(db.size() / 200));
  options.compute_exceptions = false;
  options.mark_redundant = false;
  return options;
}

QueryRequest MixedRequest(const PathDatabase& db, uint64_t seq) {
  const size_t num_dims = db.schema().num_dimensions();
  QueryRequest req;
  req.request_id = seq;
  switch (seq % 4) {
    case 0:
      req.type = RequestType::kPointLookup;
      req.values.assign(num_dims, "*");
      break;
    case 1: {
      // Leaf coordinates with ancestor fallback: resolves low in the
      // lattice, so the fetch batch carries the generalization closure.
      req.type = RequestType::kCellOrAncestor;
      const PathRecord& rec = db.record((seq * 13) % db.size());
      for (size_t d = 0; d < rec.dims.size(); ++d) {
        req.values.push_back(db.schema().dimensions[d].Name(rec.dims[d]));
      }
      break;
    }
    case 2:
      req.type = RequestType::kDrillDown;
      req.values.assign(num_dims, "*");
      req.dim = static_cast<uint32_t>((seq / 4) % num_dims);
      break;
    default:
      req.type = RequestType::kStats;
      break;
  }
  return req;
}

struct SweepRow {
  size_t shards = 0;
  uint64_t records = 0;
  double build_seconds = 0.0;
  double ingest_rps = 0.0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  double query_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

SweepRow RunSweep(size_t num_shards) {
  const PathDatabase& db = Workload();
  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  const FlowCubeBuilderOptions global = GlobalOptions(db);

  std::unique_ptr<ShardPartitioner> partitioner =
      MakePartitioner(PartitionerKind(), num_shards,
                      db.schema().dimensions[0].NodeCount())
          .value();
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::vector<ShardNode*> raw;
  std::vector<const QueryService*> services;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardNodeOptions options;
    options.global_build = global;
    nodes.push_back(
        ShardNode::Create(db.schema_ptr(), plan, options).value());
    raw.push_back(nodes.back().get());
    services.push_back(&nodes.back()->service());
  }
  ShardIngestSplitter splitter(partitioner.get(), raw);
  LocalShardBackend backend(services);
  ShardCoordinatorOptions coordinator_options;
  coordinator_options.min_support = global.min_support;
  const ShardCoordinator coordinator(db.schema_ptr(), plan, &backend,
                                     coordinator_options);

  SweepRow row;
  row.shards = num_shards;
  row.records = db.size();

  // Build phase: the whole stream through the splitter, batched the way a
  // streaming deployment would batch it.
  const std::span<const PathRecord> records(db.records());
  const size_t batch = std::max<size_t>(1, db.size() / 16);
  const auto build_start = std::chrono::steady_clock::now();
  for (size_t offset = 0; offset < records.size(); offset += batch) {
    const size_t n = std::min(batch, records.size() - offset);
    FC_CHECK(splitter.Apply(records.subspan(offset, n)).ok());
  }
  row.build_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - build_start)
                          .count();
  row.ingest_rps =
      row.build_seconds > 0 ? db.size() / row.build_seconds : 0.0;

  // Query phase: closed-loop callers against the coordinator.
  constexpr int kCallers = 4;
  const size_t per_caller = std::max<size_t>(50, ScaledN(1) / 4);
  std::vector<std::vector<double>> latencies(kCallers);
  std::atomic<uint64_t> errors{0};
  const auto query_start = std::chrono::steady_clock::now();
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::vector<double>& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(per_caller);
      for (size_t i = 0; i < per_caller; ++i) {
        const uint64_t seq =
            static_cast<uint64_t>(c) * per_caller + i;
        const auto t0 = std::chrono::steady_clock::now();
        const CoordinatorResult result =
            coordinator.Execute(MixedRequest(db, seq));
        const auto t1 = std::chrono::steady_clock::now();
        if (result.response.code != Status::Code::kOk) {
          errors.fetch_add(1);
          continue;
        }
        lat.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : callers) t.join();
  row.query_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - query_start)
                          .count();

  std::vector<double> all;
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    row.p50_ms = all[all.size() / 2];
    row.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  row.queries = all.size();
  row.errors = errors.load();
  row.qps = row.query_seconds > 0 ? row.queries / row.query_seconds : 0.0;
  return row;
}

void RegisterAll() {
  std::vector<size_t> shard_counts = {1, 2, 4, 8};
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, pre-thread setup
  if (const char* s = std::getenv("FLOWCUBE_SHARDS")) {
    const long n = std::atol(s);
    if (n > 0) shard_counts.assign(1, static_cast<size_t>(n));
  }
  for (const size_t shards : shard_counts) {
    const std::string bench_name =
        "shard_scaling/shards=" + std::to_string(shards);
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [shards](benchmark::State& state) {
          for (auto _ : state) {
            const SweepRow row = RunSweep(shards);
            state.SetIterationTime(row.build_seconds + row.query_seconds);
            state.counters["build_s"] = row.build_seconds;
            state.counters["ingest_rps"] = row.ingest_rps;
            state.counters["qps"] = row.qps;
            state.counters["p99_ms"] = row.p99_ms;
            Json().AddRow(
                {JsonField::Str("x", std::to_string(shards) + " shards"),
                 JsonField::Int("shards", row.shards),
                 JsonField::Str("partitioner", PartitionerKind()),
                 JsonField::Int("records", row.records),
                 JsonField::Num("build_seconds", row.build_seconds),
                 JsonField::Num("ingest_rps", row.ingest_rps),
                 JsonField::Int("queries", row.queries),
                 JsonField::Int("errors", row.errors),
                 JsonField::Num("query_seconds", row.query_seconds),
                 JsonField::Num("qps", row.qps),
                 JsonField::Num("p50_ms", row.p50_ms),
                 JsonField::Num("p99_ms", row.p99_ms)});
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  Json().Write();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
