// Query-path throughput over a materialized flowcube: point lookups by
// value names, ancestor fallbacks on the redundancy-compressed cube,
// drill-downs, and pairwise flowgraph similarity. Run on a Table-3-scale
// configuration (3 dimensions, full lattice), it doubles as the memory
// benchmark for the sealed columnar storage: every row carries the cube's
// measured flowcube.memory_bytes next to an estimate of what the previous
// map-based layout (unordered_map cells, per-node child vectors, std::map
// duration distributions) would spend on the same content.
//
// Expected: lookups in the millions/sec, fallbacks within ~2x of direct
// lookups, and sealed memory well below the map-layout estimate.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_common.h"
#include "flowcube/builder.h"
#include "flowcube/query.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

GeneratorConfig CubeConfig() {
  // Same shape as the compression ablation: small dimensionality so the
  // full cuboid lattice is materialized (the paper's Table 3 setting).
  GeneratorConfig cfg = BaselineConfig(3);
  cfg.dim_distinct_per_level = {3, 3, 4};
  return cfg;
}

struct Workload {
  PathDatabase db;
  std::unique_ptr<FlowCube> cube;
  // Value-name coordinates of every materialized cell (path level 0), and
  // resolved refs into the still-uncompressed cube. Refs are invalidated by
  // EraseRedundant(); the fallback benchmark only uses the names.
  std::vector<std::vector<std::string>> coords;
  std::vector<CellRef> refs;
  bool compressed = false;
};

std::vector<std::string> CoordinateOf(const FlowCell& cell,
                                      const ItemCatalog& cat,
                                      const PathSchema& schema) {
  std::vector<std::string> values(schema.num_dimensions(), "*");
  for (const ItemId id : cell.dims) {
    const size_t dim = cat.DimOf(id);
    values[dim] = schema.dimensions[dim].Name(cat.NodeOf(id));
  }
  return values;
}

Workload& SharedWorkload() {
  static Workload* w = [] {
    auto* work = new Workload{
        PathGenerator(CubeConfig()).Generate(ScaledN(20)), nullptr, {}, {}};
    const FlowCubePlan plan =
        FlowCubePlan::Default(work->db.schema()).value();
    FlowCubeBuilderOptions opts;
    opts.min_support =
        std::max<uint32_t>(2, static_cast<uint32_t>(ScaledN(20) / 200));
    opts.compute_exceptions = false;
    opts.mark_redundant = true;
    work->cube = std::make_unique<FlowCube>(
        std::move(FlowCubeBuilder(opts).Build(work->db, plan).value()));
    const ItemCatalog& cat = work->cube->catalog();
    for (size_t il = 0; il < plan.item_levels.size(); ++il) {
      work->cube->cuboid(il, 0).ForEach([&](const FlowCell& cell) {
        work->coords.push_back(
            CoordinateOf(cell, cat, work->db.schema()));
        work->refs.push_back(CellRef{&cell, il, 0});
      });
    }
    return work;
  }();
  return *w;
}

// What the pre-columnar layout spends on the same cube content, from the
// libstdc++ x86-64 sizes of its building blocks:
//   * one unordered_map hash node (next pointer + cached hash) and roughly
//     one bucket pointer per cell;
//   * per flowgraph node, a record owning a child vector (header inline)
//     and a std::map<Duration, uint32_t> (header inline);
//   * one red-black tree node per (duration, count) entry.
size_t EstimateMapLayoutBytes(const FlowCube& cube) {
  constexpr size_t kHashNodeOverhead = 24;
  constexpr size_t kBucketPointer = 8;
  constexpr size_t kRbTreeNode = 48;
  constexpr size_t kMapHeader = 48;
  constexpr size_t kVectorHeader = 24;
  constexpr size_t kNodeCounts = 4 * 5;  // location/parent/depth/2 counts
  size_t total = 0;
  cube.ForEachCuboid([&](const Cuboid& cuboid) {
    cuboid.ForEach([&](const FlowCell& cell) {
      total += sizeof(FlowCell) + kHashNodeOverhead + kBucketPointer;
      total += cell.dims.size() * sizeof(ItemId);
      const FlowGraph& g = cell.graph;
      for (FlowNodeId n = 0; n < g.num_nodes(); ++n) {
        total += kNodeCounts + kVectorHeader + kMapHeader;
        total += g.children(n).size() * sizeof(FlowNodeId);
        total += g.duration_counts(n).size() * kRbTreeNode;
      }
    });
  });
  return total;
}

struct ThroughputRow {
  std::string op;
  uint64_t ops = 0;
  double seconds = 0;
  size_t memory_bytes = 0;
  size_t cells = 0;
};

std::vector<ThroughputRow>& Rows() {
  static std::vector<ThroughputRow> rows;
  return rows;
}

// Times `body` (which must perform `ops` query operations) and appends a
// throughput row, also charging the time to the benchmark state.
template <typename Body>
void MeasureOp(const char* op, uint64_t ops, benchmark::State& state,
               Body&& body) {
  Workload& w = SharedWorkload();
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    state.SetIterationTime(seconds);
    Rows().push_back(ThroughputRow{op, ops, seconds, w.cube->MemoryUsage(),
                                   w.cube->TotalCells()});
  }
}

void BenchPointLookup(benchmark::State& state) {
  Workload& w = SharedWorkload();
  const FlowCubeQuery query(w.cube.get());
  constexpr int kRounds = 20;
  uint64_t hits = 0;
  MeasureOp("point_lookup", kRounds * w.coords.size(), state, [&] {
    for (int r = 0; r < kRounds; ++r) {
      for (const auto& values : w.coords) {
        if (query.Cell(values).ok()) ++hits;
      }
    }
  });
  benchmark::DoNotOptimize(hits);
}

void BenchDrillDown(benchmark::State& state) {
  Workload& w = SharedWorkload();
  const FlowCubeQuery query(w.cube.get());
  const size_t dims = w.db.schema().num_dimensions();
  uint64_t children = 0;
  MeasureOp("drill_down", w.refs.size() * dims, state, [&] {
    for (const CellRef& ref : w.refs) {
      for (size_t d = 0; d < dims; ++d) {
        children += query.DrillDown(ref, d).size();
      }
    }
  });
  benchmark::DoNotOptimize(children);
}

void BenchSimilarity(benchmark::State& state) {
  Workload& w = SharedWorkload();
  const FlowCubeQuery query(w.cube.get());
  // Pairwise over a slice of cells, capped so the quadratic count stays
  // bench-sized at every scale.
  const size_t k = std::min<size_t>(w.refs.size(), 60);
  double sink = 0;
  MeasureOp("pairwise_similarity", k * k, state, [&] {
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        sink += query.Compare(w.refs[i], w.refs[j]);
      }
    }
  });
  benchmark::DoNotOptimize(sink);
}

void BenchAncestorFallback(benchmark::State& state) {
  Workload& w = SharedWorkload();
  if (!w.compressed) {
    // Invalidates w.refs: only the recorded name coordinates remain valid.
    w.cube->EraseRedundant();
    w.refs.clear();
    w.compressed = true;
  }
  const FlowCubeQuery query(w.cube.get());
  constexpr int kRounds = 20;
  uint64_t resolved = 0;
  MeasureOp("ancestor_fallback", kRounds * w.coords.size(), state, [&] {
    for (int r = 0; r < kRounds; ++r) {
      for (const auto& values : w.coords) {
        if (query.CellOrAncestor(values).ok()) ++resolved;
      }
    }
  });
  benchmark::DoNotOptimize(resolved);
}

void RegisterAll() {
  // Registration order is execution order: every benchmark that needs the
  // full cube runs before the fallback benchmark compresses it.
  const struct {
    const char* name;
    void (*fn)(benchmark::State&);
  } benches[] = {
      {"query/point_lookup", BenchPointLookup},
      {"query/drill_down", BenchDrillDown},
      {"query/pairwise_similarity", BenchSimilarity},
      {"query/ancestor_fallback", BenchAncestorFallback},
  };
  for (const auto& b : benches) {
    benchmark::RegisterBenchmark(b.name, b.fn)
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  Workload& w = SharedWorkload();
  const size_t sealed_bytes = w.cube->MemoryUsage();
  const size_t map_bytes = EstimateMapLayoutBytes(*w.cube);
  // Mirror the builder's gauge so the folded "metrics" key carries the
  // final figure even when the build ran before --metrics parsing.
  MetricRegistry::Global()
      .gauge("flowcube.memory_bytes")
      .Set(static_cast<int64_t>(sealed_bytes));

  std::printf("\n=== Query throughput (N=20k@scale%.2f, d=3) ===\n",
              ScaleFromEnv());
  std::printf("%-22s %12s %10s %14s %16s\n", "op", "ops", "seconds",
              "ops/sec", "memory_bytes");
  for (const auto& r : Rows()) {
    const double rate = r.seconds > 0 ? r.ops / r.seconds : 0;
    std::printf("%-22s %12llu %10.4f %14.0f %16zu\n", r.op.c_str(),
                static_cast<unsigned long long>(r.ops), r.seconds, rate,
                r.memory_bytes);
  }
  std::printf("sealed columnar cube: %zu bytes; map-layout estimate: %zu "
              "bytes (%.2fx)\n",
              sealed_bytes, map_bytes,
              sealed_bytes > 0
                  ? static_cast<double>(map_bytes) / sealed_bytes
                  : 0.0);

  BenchJson json("query_throughput", "query operation");
  for (const auto& r : Rows()) {
    const double rate = r.seconds > 0 ? r.ops / r.seconds : 0;
    json.AddRow({JsonField::Str("x", r.op),
                 JsonField::Str("algo", "flowcube"),
                 JsonField::Int("ops", r.ops),
                 JsonField::Num("seconds", r.seconds),
                 JsonField::Num("ops_per_sec", rate),
                 JsonField::Int("cells", r.cells),
                 JsonField::Int("flowcube.memory_bytes", r.memory_bytes)});
  }
  // The memory row is the headline of the storage refactor: the sealed
  // cube vs what the map-based layout would have spent on the same cells.
  json.AddRow(
      {JsonField::Str("x", "memory"), JsonField::Str("algo", "flowcube"),
       JsonField::Int("flowcube.memory_bytes", sealed_bytes),
       JsonField::Int("map_layout_bytes_estimate", map_bytes),
       JsonField::Num("reduction_factor",
                      sealed_bytes > 0
                          ? static_cast<double>(map_bytes) / sealed_bytes
                          : 0.0)});
  json.Write();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
