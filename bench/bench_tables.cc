// Tables 1-4 and Figures 3-4: the paper's running example, regenerated.
//
//   Table 1 - the 8-record path database.
//   Table 2 - the database aggregated to the (product level 2) cell view.
//   Table 3 - the transformed transaction database.
//   Table 4 - frequent itemsets of length 1 and 2 at delta = 3 (the paper's
//             table lists support values; two of its rows are inconsistent
//             with its own Table 1 — we print the recomputed ground truth
//             and flag the deltas).
//   Figure 3 - the flowgraph of the whole database.
//   Figure 4 - the flowgraph of cell (outerwear, nike).
//
// The timing hooks exist for uniformity with the other bench binaries; the
// interesting output is the regenerated tables.

#include <map>

#include <benchmark/benchmark.h>

#include "flowgraph/builder.h"
#include "flowgraph/render.h"
#include "bench_common.h"
#include "gen/paper_example.h"
#include "mining/mining_result.h"
#include "mining/shared_miner.h"
#include "path/path_aggregator.h"

namespace {

using namespace flowcube;

void BM_PaperExample(benchmark::State& state) {
  for (auto _ : state) {
    PathDatabase db = MakePaperDatabase();
    benchmark::DoNotOptimize(db.size());
  }
}
BENCHMARK(BM_PaperExample);

size_t PrintTable1(const PathDatabase& db) {
  std::printf("\n--- Table 1: path database ---\n");
  for (size_t i = 0; i < db.size(); ++i) {
    std::printf("%2zu  %s\n", i + 1, RecordToString(db.schema(),
                                                    db.record(i)).c_str());
  }
  return db.size();
}

size_t PrintTable2(const PathDatabase& db) {
  std::printf("\n--- Table 2: aggregated to product level 2 ---\n");
  const PathAggregator aggregator(db.schema_ptr());
  std::map<std::pair<std::string, std::string>, std::vector<size_t>> cells;
  for (size_t i = 0; i < db.size(); ++i) {
    const auto up =
        aggregator.AggregateDims(db.record(i).dims, ItemLevel{{2, 2}});
    cells[{db.schema().dimensions[0].Name(up[0]),
           db.schema().dimensions[1].Name(up[1])}]
        .push_back(i + 1);
  }
  std::printf("%-12s %-8s %s\n", "product", "brand", "path ids");
  for (const auto& [key, ids] : cells) {
    std::string id_list;
    for (size_t id : ids) {
      if (!id_list.empty()) id_list += ",";
      id_list += std::to_string(id);
    }
    std::printf("%-12s %-8s %s\n", key.first.c_str(), key.second.c_str(),
                id_list.c_str());
  }
  return cells.size();
}

size_t PrintTable3(const TransformedDatabase& tdb) {
  std::printf("\n--- Table 3: transformed transaction database ---\n");
  std::printf("(raw path level items shown; the full transactions also "
              "carry the 3 aggregated levels)\n");
  const ItemCatalog& cat = tdb.catalog();
  for (size_t i = 0; i < tdb.size(); ++i) {
    std::string line;
    for (ItemId id : tdb.transactions()[i].items) {
      const bool raw_level =
          cat.IsDimItem(id) || cat.StageOf(id).path_level == 0;
      if (!raw_level) continue;
      if (!line.empty()) line += ", ";
      line += cat.ToString(id);
    }
    std::printf("%2zu  {%s}\n", i + 1, line.c_str());
  }
  return tdb.size();
}

size_t PrintTable4(const PathDatabase& db, const TransformedDatabase& tdb) {
  std::printf("\n--- Table 4: frequent itemsets (delta = 3) ---\n");
  SharedMinerOptions opts;
  opts.min_support = 3;
  SharedMiner miner(tdb, opts);
  const auto out = miner.Run();
  (void)db;
  size_t printed = 0;
  for (size_t len : {1u, 2u}) {
    std::printf("length %zu:\n", len);
    for (const FrequentItemset& fi : out.frequent) {
      if (fi.items.size() != len) continue;
      std::printf("  %s\n",
                  FrequentItemsetToString(tdb.catalog(), fi).c_str());
      printed++;
    }
  }
  std::printf(
      "note: the paper's Table 4 lists {tennis}:5 and {nike,(f,10)}:4; "
      "recomputation\nfrom Table 1 gives 4 and 5 respectively (see "
      "EXPERIMENTS.md).\n");
  return printed;
}

// Returns {figure 3 node count, figure 4 node count}.
std::pair<size_t, size_t> PrintFigures(const PathDatabase& db) {
  std::vector<Path> all;
  for (const PathRecord& r : db.records()) all.push_back(r.path);
  const FlowGraph full = BuildFlowGraph(all);
  std::printf("\n--- Figure 3: flowgraph of the full database ---\n%s",
              RenderFlowGraph(full, db.schema()).c_str());

  std::vector<Path> cell = {db.record(3).path, db.record(4).path,
                            db.record(5).path};
  const FlowGraph cell_graph = BuildFlowGraph(cell);
  std::printf("\n--- Figure 4: flowgraph of cell (outerwear, nike) ---\n%s",
              RenderFlowGraph(cell_graph, db.schema()).c_str());
  return {full.num_nodes(), cell_graph.num_nodes()};
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  PathDatabase db = MakePaperDatabase();
  const MiningPlan plan = MiningPlan::Default(db.schema()).value();
  TransformedDatabase tdb =
      std::move(TransformPathDatabase(db, plan).value());

  const size_t t1 = PrintTable1(db);
  const size_t t2 = PrintTable2(db);
  const size_t t3 = PrintTable3(tdb);
  const size_t t4 = PrintTable4(db, tdb);
  const auto [fig3_nodes, fig4_nodes] = PrintFigures(db);

  // Row counts of the regenerated artifacts; a cheap drift detector for
  // the paper example.
  flowcube::bench::BenchJson json("tables", "paper artifact");
  using flowcube::bench::JsonField;
  json.AddRow({JsonField::Str("x", "table1_paths"), JsonField::Int("rows", t1)});
  json.AddRow({JsonField::Str("x", "table2_cells"), JsonField::Int("rows", t2)});
  json.AddRow({JsonField::Str("x", "table3_transactions"),
               JsonField::Int("rows", t3)});
  json.AddRow({JsonField::Str("x", "table4_frequent_len12"),
               JsonField::Int("rows", t4)});
  json.AddRow({JsonField::Str("x", "fig3_nodes"),
               JsonField::Int("rows", fig3_nodes)});
  json.AddRow({JsonField::Str("x", "fig4_nodes"),
               JsonField::Int("rows", fig4_nodes)});
  json.Write();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
