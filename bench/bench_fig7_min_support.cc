// Figure 7: runtime vs minimum support (0.3%..2.0%; N = 100k at scale 1,
// d = 5).
//
// Paper shape: all algorithms improve with rising support; basic improves
// fastest (pruning matters less when few candidates exist); shared
// outperforms cubing at every level and improves faster than cubing.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

Summary& GetSummary() {
  static Summary summary(
      "fig7_min_support", "minimum support (fraction of N)",
      "Figure 7 - runtime vs minimum support (N=100k@scale1, d=5)",
      "all improve with support; basic improves fastest; shared < cubing "
      "throughout");
  return summary;
}

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

void RegisterAll() {
  const size_t n = ScaledN(100);
  const std::vector<double> fractions = {0.003, 0.005, 0.008,
                                         0.010, 0.015, 0.020};
  for (double frac : fractions) {
    const uint32_t minsup =
        std::max<uint32_t>(1, static_cast<uint32_t>(n * frac));
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f%%", frac * 100);
    const std::string x = label;

    struct Algo {
      const char* name;
      MinerRun (*fn)(const PathDatabase&, uint32_t);
      bool enabled;
    };
    // Basic needs minutes below 1% support; gate it as the paper gated its
    // own heavy runs.
    const bool basic_ok = frac >= 0.01 || ForceBasic();
    const Algo algos[] = {
        {"shared", &RunShared, true},
        {"cubing", &RunCubing, true},
        {"basic", &RunBasic, basic_ok},
    };
    for (const Algo& algo : algos) {
      if (!algo.enabled) {
        GetSummary().Add(Row{x, algo.name, false, MinerRun{},
                             "skipped below 1% support; set "
                             "FLOWCUBE_BENCH_BASIC=1"});
        continue;
      }
      const std::string bench_name =
          std::string("fig7/") + algo.name + "/minsup=" + x;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [n, minsup, x, algo](benchmark::State& state) {
            const PathDatabase& db = Cache().Get(BaselineConfig(), n);
            for (auto _ : state) {
              const MinerRun run = algo.fn(db, minsup);
              state.SetIterationTime(run.seconds);
              state.counters["candidates"] =
                  static_cast<double>(run.candidates);
              GetSummary().Add(Row{x, algo.name, true, run, ""});
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  GetSummary().Print();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
