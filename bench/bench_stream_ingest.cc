// Streaming benchmark (no paper figure — the streaming subsystem is ours):
// sweeps the micro-batch size and reports (a) raw-reading ingest throughput
// through the StreamIngestor pipeline and (b) the speedup of incremental
// FlowCube maintenance over rebuilding from scratch after every batch.
//
// Expected shape: ingest throughput is roughly flat in batch size (the
// cleaner dominates); the incremental-vs-rebuild speedup grows as batches
// shrink, because a rebuild re-pays the whole transform/mine/measure
// pipeline per batch while Apply() only touches dirty cells.

#include <algorithm>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "flowcube/builder.h"
#include "rfid/reader_simulator.h"
#include "stream/incremental_maintainer.h"
#include "stream/stream_ingestor.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

constexpr int64_t kBinSeconds = 3600;

BenchJson& Json() {
  static BenchJson json("stream_ingest", "records per micro-batch");
  return json;
}

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

// The streaming workload: the baseline generator at 2 dimensions (streams
// track individual items, so the cell space is kept small enough that
// per-batch rebuilds stay feasible at smoke scale).
const PathDatabase& Db(size_t n) {
  return Cache().Get(BaselineConfig(/*num_dimensions=*/2), n);
}

// Splits the time-sorted reading stream into `num_batches` contiguous
// batches, mirroring a reader that uploads on a fixed cadence.
std::vector<std::vector<RawReading>> SplitReadings(
    const std::vector<RawReading>& stream, size_t num_batches) {
  std::vector<std::vector<RawReading>> batches(std::max<size_t>(1, num_batches));
  const size_t per = (stream.size() + batches.size() - 1) / batches.size();
  for (size_t i = 0; i < stream.size(); ++i) {
    batches[std::min(i / std::max<size_t>(1, per), batches.size() - 1)]
        .push_back(stream[i]);
  }
  return batches;
}

// (a) End-to-end ingest: push every raw batch through the StreamIngestor
// (worker thread cleans + discretizes + emits deltas) while a consumer
// drains the delta queue. Returns seconds and the records emitted.
struct IngestRun {
  double seconds = 0.0;
  size_t readings = 0;
  size_t records_out = 0;
};

IngestRun RunIngest(const PathDatabase& db, size_t num_batches) {
  const std::vector<Itinerary> truth =
      PathGenerator::ToItineraries(db, kBinSeconds);
  ReaderSimulator simulator(ReaderSimulatorOptions{}, /*seed=*/17);
  const std::vector<RawReading> stream = simulator.Simulate(truth);

  StreamIngestorOptions options;
  options.bin_seconds = kBinSeconds;
  options.close_after_seconds = 4 * kBinSeconds;
  StreamIngestor ingestor(db.schema_ptr(), options);
  for (size_t i = 0; i < db.size(); ++i) {
    FC_CHECK(ingestor.RegisterItem(static_cast<EpcId>(i + 1),
                                   db.record(i).dims)
                 .ok());
  }

  IngestRun run;
  run.readings = stream.size();
  size_t records_out = 0;
  TraceSpan span("bench.stream.ingest");
  std::thread consumer([&ingestor, &records_out] {
    while (std::optional<StreamDelta> delta = ingestor.Pop()) {
      records_out += delta->records.size();
    }
  });
  for (auto& batch : SplitReadings(stream, num_batches)) {
    FC_CHECK(ingestor.Push(std::move(batch)).ok());
  }
  ingestor.Close();
  consumer.join();
  run.seconds = span.Stop();
  run.records_out = records_out;
  return run;
}

// (b) Incremental maintenance vs from-scratch rebuilds: apply the path
// records in micro-batches of `batch` records through the
// IncrementalMaintainer, then time rebuilding the cube from scratch after
// every batch (what a system without incremental maintenance would do).
struct MaintainRun {
  double incremental_seconds = 0.0;
  double rebuild_seconds = 0.0;
  size_t num_batches = 0;
  size_t cells_rebuilt = 0;
};

MaintainRun RunMaintain(const PathDatabase& db, size_t batch,
                        uint32_t minsup) {
  const FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
  IncrementalMaintainerOptions options;
  options.build.min_support = minsup;

  MaintainRun run;
  {
    IncrementalMaintainer maintainer =
        std::move(IncrementalMaintainer::Create(db.schema_ptr(), plan, options)
                      .value());
    TraceSpan span("bench.stream.incremental");
    for (size_t offset = 0; offset < db.size(); offset += batch) {
      ApplyStats stats;
      FC_CHECK(maintainer
                   .ApplyRecords(
                       std::span<const PathRecord>(db.records())
                           .subspan(offset, std::min(batch, db.size() - offset)),
                       &stats)
                   .ok());
      run.cells_rebuilt += stats.cells_rebuilt;
      run.num_batches++;
    }
    run.incremental_seconds = span.Stop();
  }
  {
    const FlowCubeBuilder builder(options.build);
    PathDatabase prefix(db.schema_ptr());
    TraceSpan span("bench.stream.rebuild");
    for (size_t offset = 0; offset < db.size(); offset += batch) {
      const size_t take = std::min(batch, db.size() - offset);
      for (size_t i = 0; i < take; ++i) {
        FC_CHECK(prefix.Append(db.record(offset + i)).ok());
      }
      benchmark::DoNotOptimize(builder.Build(prefix, plan).value());
    }
    run.rebuild_seconds = span.Stop();
  }
  return run;
}

void RegisterAll() {
  const size_t n = std::max<size_t>(32, ScaledN(20));
  const uint32_t minsup =
      std::max<uint32_t>(2, static_cast<uint32_t>(n / 100));
  // Batch sizes as fractions of the stream so the rebuild baseline stays
  // bounded (at most 64 from-scratch builds per row).
  const size_t fractions[] = {64, 16, 4, 1};
  for (const size_t frac : fractions) {
    const size_t batch = std::max<size_t>(1, n / frac);
    const std::string bench_name =
        "stream/batch=" + std::to_string(batch);
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [n, batch, minsup](benchmark::State& state) {
          const PathDatabase& db = Db(n);
          for (auto _ : state) {
            const IngestRun ingest = RunIngest(db, (n + batch - 1) / batch);
            const MaintainRun maintain = RunMaintain(db, batch, minsup);
            state.SetIterationTime(ingest.seconds +
                                   maintain.incremental_seconds);
            state.counters["readings_per_sec"] =
                ingest.seconds > 0
                    ? static_cast<double>(ingest.readings) / ingest.seconds
                    : 0.0;
            state.counters["speedup"] =
                maintain.incremental_seconds > 0
                    ? maintain.rebuild_seconds / maintain.incremental_seconds
                    : 0.0;
            Json().AddRow(
                {JsonField::Str("x", std::to_string(batch) + " records"),
                 JsonField::Int("batch_records", batch),
                 JsonField::Int("stream_records", n),
                 JsonField::Int("readings", ingest.readings),
                 JsonField::Int("records_out", ingest.records_out),
                 JsonField::Num("ingest_seconds", ingest.seconds),
                 JsonField::Num("readings_per_second",
                                ingest.seconds > 0
                                    ? static_cast<double>(ingest.readings) /
                                          ingest.seconds
                                    : 0.0),
                 JsonField::Int("batches", maintain.num_batches),
                 JsonField::Int("cells_rebuilt", maintain.cells_rebuilt),
                 JsonField::Num("incremental_seconds",
                                maintain.incremental_seconds),
                 JsonField::Num("rebuild_seconds", maintain.rebuild_seconds),
                 JsonField::Num("speedup",
                                maintain.incremental_seconds > 0
                                    ? maintain.rebuild_seconds /
                                          maintain.incremental_seconds
                                    : 0.0)});
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  Json().Write();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
