// Cold-start benchmark (no paper figure — the out-of-core store is ours):
// times how long a serving process takes to go from a checkpoint file on
// disk to its first query answered, for the three restart paths:
//
//   v1_decode — FCSP v1 checkpoint through LoadCheckpoint: re-parse every
//               record, rebuild and re-seal every cuboid.
//   v2_decode — FCSP v2 through LoadCheckpoint: same full pipeline restore,
//               reading the sealed sections instead of the record log.
//   v2_mmap   — FCSP v2 through MappedCube::Load: validate the header and
//               section CRCs, bounds-check the canonical layout, and serve
//               queries straight out of the mapping — no column is copied.
//
// Expected shape: v2_mmap load time is dominated by the CRC pass (memory
// bandwidth), so it beats v1_decode by well over an order of magnitude at
// baseline scale; the acceptance floor for this PR is 5x. v2_decode sits
// between the two (no record replay, but it still materializes the cube on
// the heap).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "serve/query_service.h"
#include "serve/snapshot_registry.h"
#include "store/mapped_cube.h"
#include "stream/checkpoint.h"
#include "stream/incremental_maintainer.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

BenchJson& Json() {
  static BenchJson json("coldstart", "restart path");
  return json;
}

// The pipeline whose checkpoints every restart path restores. Built once;
// both format files are written next to each other so the three paths read
// byte-equivalent cube state.
struct ColdstartFixture {
  PathDatabase db;
  FlowCubePlan plan;
  IncrementalMaintainerOptions options;
  std::string v1_file;
  std::string v2_file;

  ColdstartFixture()
      : db(PathGenerator(BaselineConfig(/*num_dimensions=*/2))
               .Generate(std::max<size_t>(256, ScaledN(20)))),
        plan(FlowCubePlan::Default(db.schema()).value()) {
    options.build.min_support =
        std::max<uint32_t>(2, static_cast<uint32_t>(db.size() / 100));
    Result<IncrementalMaintainer> m =
        IncrementalMaintainer::Create(db.schema_ptr(), plan, options);
    FC_CHECK(m.ok());
    FC_CHECK(m->ApplyRecords(std::span<const PathRecord>(db.records())).ok());
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path();
    v1_file = (dir / "flowcube_bench_coldstart_v1.fcsp").string();
    v2_file = (dir / "flowcube_bench_coldstart_v2.fcsp").string();
    FC_CHECK(
        SaveCheckpoint(m.value(), nullptr, v1_file, kCheckpointFormatV1)
            .ok());
    FC_CHECK(
        SaveCheckpoint(m.value(), nullptr, v2_file, kCheckpointFormatV2)
            .ok());
  }
};

const ColdstartFixture& Fixture() {
  static const ColdstartFixture* fixture = new ColdstartFixture();
  return *fixture;
}

// One cold start, timed to first query served: restore the file, publish a
// snapshot the serving layer could hand out, and answer a stats query from
// it. Returns {seconds_load, seconds_total}.
struct ColdstartRun {
  double seconds_load = 0.0;
  double seconds_total = 0.0;
};

QueryResponse FirstQuery(const CubeSnapshot& snap) {
  QueryRequest stats;
  stats.type = RequestType::kStats;
  stats.request_id = 1;
  return QueryService::ExecuteOn(snap, stats);
}

ColdstartRun RunDecode(const std::string& file) {
  const ColdstartFixture& fx = Fixture();
  const auto t0 = std::chrono::steady_clock::now();
  Result<RestoredPipeline> restored =
      LoadCheckpoint(file, fx.db.schema_ptr(), fx.plan, fx.options);
  FC_CHECK_MSG(restored.ok(), restored.status().message());
  CubeSnapshot snap;
  snap.epoch = 1;
  snap.records = restored->maintainer.live_record_count();
  snap.cube =
      std::make_shared<const FlowCube>(restored->maintainer.cube().Clone());
  const auto t1 = std::chrono::steady_clock::now();
  const QueryResponse response = FirstQuery(snap);
  FC_CHECK(response.code == Status::Code::kOk);
  const auto t2 = std::chrono::steady_clock::now();
  ColdstartRun run;
  run.seconds_load = std::chrono::duration<double>(t1 - t0).count();
  run.seconds_total = std::chrono::duration<double>(t2 - t0).count();
  return run;
}

ColdstartRun RunMmap() {
  const ColdstartFixture& fx = Fixture();
  const auto t0 = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const MappedCube>> mapped =
      MappedCube::Load(fx.v2_file, fx.db.schema_ptr(), fx.plan, fx.options);
  FC_CHECK_MSG(mapped.ok(), mapped.status().message());
  CubeSnapshot snap;
  snap.epoch = 1;
  snap.records = mapped.value()->live_records();
  snap.cube = mapped.value()->shared_cube();
  const auto t1 = std::chrono::steady_clock::now();
  const QueryResponse response = FirstQuery(snap);
  FC_CHECK(response.code == Status::Code::kOk);
  const auto t2 = std::chrono::steady_clock::now();
  ColdstartRun run;
  run.seconds_load = std::chrono::duration<double>(t1 - t0).count();
  run.seconds_total = std::chrono::duration<double>(t2 - t0).count();
  return run;
}

struct Variant {
  const char* name;
  ColdstartRun (*run)();
};

ColdstartRun RunV1Decode() { return RunDecode(Fixture().v1_file); }
ColdstartRun RunV2Decode() { return RunDecode(Fixture().v2_file); }

// Best of k trials per variant: cold-start time is the metric, but the
// first trial also pays page-cache and allocator warmup shared by every
// path, so the minimum is the stable comparison point.
ColdstartRun BestOf(ColdstartRun (*run)(), int trials) {
  ColdstartRun best = run();
  for (int i = 1; i < trials; ++i) {
    const ColdstartRun next = run();
    if (next.seconds_total < best.seconds_total) best = next;
  }
  return best;
}

void RegisterAll() {
  static const Variant kVariants[] = {
      {"v1_decode", &RunV1Decode},
      {"v2_decode", &RunV2Decode},
      {"v2_mmap", &RunMmap},
  };
  // v1_decode's best-of time, filled in by the first variant; the bench
  // registration order guarantees it runs first.
  static double v1_seconds = 0.0;
  for (const Variant& variant : kVariants) {
    const std::string bench_name = std::string("coldstart/") + variant.name;
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [variant](benchmark::State& state) {
          for (auto _ : state) {
            const ColdstartRun run = BestOf(variant.run, 3);
            state.SetIterationTime(run.seconds_total);
            if (std::string(variant.name) == "v1_decode") {
              v1_seconds = run.seconds_total;
            }
            const double speedup = run.seconds_total > 0 && v1_seconds > 0
                                       ? v1_seconds / run.seconds_total
                                       : 0.0;
            state.counters["load_s"] = run.seconds_load;
            state.counters["speedup_vs_v1"] = speedup;
            const uint64_t file_size = static_cast<uint64_t>(
                std::filesystem::file_size(
                    std::string(variant.name) == "v1_decode"
                        ? Fixture().v1_file
                        : Fixture().v2_file));
            // "seconds" is the key bench_report.py tracks for regressions
            // — here it is the full cold start, load through first query.
            Json().AddRow(
                {JsonField::Str("x", variant.name),
                 JsonField::Num("seconds", run.seconds_total),
                 JsonField::Num("seconds_load", run.seconds_load),
                 JsonField::Num("seconds_first_query",
                                run.seconds_total - run.seconds_load),
                 JsonField::Num("speedup_vs_v1", speedup),
                 JsonField::Int("file_bytes", file_size)});
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  Json().Write();
  std::remove(Fixture().v1_file.c_str());
  std::remove(Fixture().v2_file.c_str());
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
