// Figure 11: pruning power — the number of candidates Basic and Shared
// must count, per candidate length (N = 100k at scale 1, delta = 1%,
// d = 5).
//
// Paper shape: shared counts a small fraction of basic's candidates at
// every length, and stops at shorter maximum pattern length (8 vs 12 in
// the paper) because basic's transactions mix items with their ancestors.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

MinerRun g_shared;
MinerRun g_basic;

void BM_Shared(benchmark::State& state) {
  const size_t n = ScaledN(100);
  const PathDatabase& db = Cache().Get(BaselineConfig(), n);
  for (auto _ : state) {
    g_shared = RunShared(db, std::max<uint32_t>(1, n / 100));
    state.SetIterationTime(g_shared.seconds);
    state.counters["candidates"] = static_cast<double>(g_shared.candidates);
  }
}

void BM_Basic(benchmark::State& state) {
  const size_t n = ScaledN(100);
  const PathDatabase& db = Cache().Get(BaselineConfig(), n);
  for (auto _ : state) {
    g_basic = RunBasic(db, std::max<uint32_t>(1, n / 100));
    state.SetIterationTime(g_basic.seconds);
    state.counters["candidates"] = static_cast<double>(g_basic.candidates);
  }
}

BENCHMARK(BM_Shared)->UseManualTime()->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(BM_Basic)->UseManualTime()->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Figure 11 - candidates counted per pattern length "
      "(N=100k@scale%.2f, delta=1%%, d=5) ===\n",
      ScaleFromEnv());
  std::printf(
      "(paper expectation: shared counts a small fraction of basic's "
      "candidates and\n stops at a shorter maximum length — 8 vs 12 in the "
      "paper)\n");
  const size_t max_len = std::max(g_shared.candidates_per_length.size(),
                                  g_basic.candidates_per_length.size());
  std::printf("%-8s %14s %14s\n", "length", "shared", "basic");
  for (size_t k = 1; k < max_len; ++k) {
    const uint64_t s = k < g_shared.candidates_per_length.size()
                           ? g_shared.candidates_per_length[k]
                           : 0;
    const uint64_t b = k < g_basic.candidates_per_length.size()
                           ? g_basic.candidates_per_length[k]
                           : 0;
    if (s == 0 && b == 0) continue;
    std::printf("%-8zu %14llu %14llu\n", k,
                static_cast<unsigned long long>(s),
                static_cast<unsigned long long>(b));
  }
  std::printf("%-8s %14llu %14llu\n", "total",
              static_cast<unsigned long long>(g_shared.candidates),
              static_cast<unsigned long long>(g_basic.candidates));

  BenchJson json("fig11_pruning_power", "candidate pattern length");
  const struct {
    const char* algo;
    const MinerRun* run;
  } series[] = {{"shared", &g_shared}, {"basic", &g_basic}};
  for (const auto& s : series) {
    for (size_t k = 1; k < s.run->candidates_per_length.size(); ++k) {
      if (s.run->candidates_per_length[k] == 0) continue;
      json.AddRow({JsonField::Str("x", std::to_string(k)),
                   JsonField::Str("algo", s.algo),
                   JsonField::Int("candidates",
                                  s.run->candidates_per_length[k])});
    }
    json.AddRow({JsonField::Str("x", "total"),
                 JsonField::Str("algo", s.algo),
                 JsonField::Int("candidates", s.run->candidates),
                 JsonField::Num("seconds", s.run->seconds),
                 JsonField::Int("frequent", s.run->frequent),
                 JsonField::Int("passes",
                                static_cast<uint64_t>(s.run->passes))});
  }
  json.Write();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
