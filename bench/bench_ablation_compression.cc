// Ablation: flowcube compression (paper Sections 4.3 / 4.4). Builds the
// cube at several iceberg thresholds and measures how many cells the
// iceberg condition and the redundancy analysis remove, plus the cost of
// the optional exception mining.
//
// Expected: cell count falls steeply with the iceberg threshold; a
// substantial fraction of surviving cells is redundant w.r.t. parents on
// hierarchical Zipf data; exception mining dominates measure time.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "flowcube/builder.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

DbCache& Cache() {
  static DbCache cache;
  return cache;
}

struct CubeRow {
  std::string config;
  double seconds = 0;
  size_t cells = 0;
  size_t redundant = 0;
  size_t exceptions = 0;
};

std::vector<CubeRow>& Rows() {
  static std::vector<CubeRow> rows;
  return rows;
}

GeneratorConfig CubeConfig() {
  // Smaller dimensionality so the full cuboid lattice is materialized.
  GeneratorConfig cfg = BaselineConfig(3);
  cfg.dim_distinct_per_level = {3, 3, 4};
  return cfg;
}

void RunOne(const std::string& label, uint32_t minsup, bool exceptions,
            double tau, benchmark::State& state) {
  const size_t n = ScaledN(20);
  const PathDatabase& db = Cache().Get(CubeConfig(), n);
  for (auto _ : state) {
    // Plan and options are setup, not the measured build.
    FlowCubePlan plan = FlowCubePlan::Default(db.schema()).value();
    FlowCubeBuilderOptions opts;
    opts.min_support = minsup;
    opts.compute_exceptions = exceptions;
    opts.exceptions.min_support = minsup;
    opts.mark_redundant = true;
    opts.redundancy_tau = tau;
    FlowCubeBuilder builder(opts);
    FlowCubeBuildStats stats;
    Result<FlowCube> cube = builder.Build(db, plan, &stats);
    const double seconds = stats.seconds_total;
    state.SetIterationTime(seconds);
    if (cube.ok()) {
      Rows().push_back(CubeRow{label, seconds, cube->TotalCells(),
                               cube->RedundantCells(),
                               stats.exceptions_found});
    }
  }
}

void RegisterAll() {
  const size_t n = ScaledN(20);
  struct Config {
    std::string label;
    uint32_t minsup;
    bool exceptions;
    double tau;
  };
  const uint32_t base = std::max<uint32_t>(2, static_cast<uint32_t>(n / 200));
  const std::vector<Config> configs = {
      {"iceberg=0.5%", base, false, 0.05},
      {"iceberg=1%", base * 2, false, 0.05},
      {"iceberg=2%", base * 4, false, 0.05},
      {"iceberg=1%+exceptions", base * 2, true, 0.05},
      {"iceberg=1%,tau=0.02", base * 2, false, 0.02},
      {"iceberg=1%,tau=0.10", base * 2, false, 0.10},
  };
  for (const Config& c : configs) {
    benchmark::RegisterBenchmark(
        ("compression/" + c.label).c_str(),
        [c](benchmark::State& state) {
          RunOne(c.label, c.minsup, c.exceptions, c.tau, state);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  // Strip --metrics[=fmt] before the benchmark library parses flags.
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf(
      "\n=== Ablation - flowcube compression (N=20k@scale%.2f, d=3) ===\n",
      ScaleFromEnv());
  std::printf("%-24s %10s %10s %12s %12s\n", "config", "seconds", "cells",
              "redundant", "exceptions");
  for (const auto& r : Rows()) {
    std::printf("%-24s %10.3f %10zu %12zu %12zu\n", r.config.c_str(),
                r.seconds, r.cells, r.redundant, r.exceptions);
  }

  BenchJson json("ablation_compression", "iceberg threshold / tau");
  for (const auto& r : Rows()) {
    json.AddRow({JsonField::Str("x", r.config),
                 JsonField::Str("algo", "flowcube"),
                 JsonField::Num("seconds", r.seconds),
                 JsonField::Int("cells", r.cells),
                 JsonField::Int("redundant", r.redundant),
                 JsonField::Int("exceptions", r.exceptions)});
  }
  json.Write();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
