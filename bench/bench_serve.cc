// Serving benchmark (no paper figure — the FCQP server is ours): sweeps the
// number of concurrent closed-loop clients hammering one QueryServer over
// loopback TCP while an IncrementalMaintainer keeps publishing fresh epochs
// underneath, and reports throughput (QPS) and tail latency (p50/p99).
//
// Expected shape: QPS grows with clients until the worker pool saturates,
// then flattens; p99 stays in the sub-millisecond range on loopback and is
// insensitive to the concurrent epoch churn, because readers pin immutable
// snapshots instead of contending with the maintainer.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "serve/client.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "serve/snapshot_registry.h"
#include "stream/incremental_maintainer.h"

namespace {

using namespace flowcube;
using namespace flowcube::bench;

BenchJson& Json() {
  static BenchJson json("serve", "concurrent clients");
  return json;
}

// The serving stack under test, shared across sweep rows: one maintainer
// publishing into one registry, one server. Half the records are applied up
// front; the rest are streamed in while clients run, one slice per row.
struct ServeStack {
  PathDatabase db;
  std::unique_ptr<IncrementalMaintainer> maintainer;
  std::unique_ptr<SnapshotRegistry> registry;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<QueryServer> server;
  size_t applied = 0;
};

ServeStack& Stack() {
  static ServeStack* s = [] {
    auto* stack = new ServeStack{
        PathGenerator(BaselineConfig(/*num_dimensions=*/2))
            .Generate(std::max<size_t>(64, ScaledN(20))),
        nullptr, nullptr, nullptr, nullptr, 0};
    const FlowCubePlan plan =
        FlowCubePlan::Default(stack->db.schema()).value();
    IncrementalMaintainerOptions options;
    options.build.min_support = std::max<uint32_t>(
        2, static_cast<uint32_t>(stack->db.size() / 100));
    stack->maintainer = std::make_unique<IncrementalMaintainer>(std::move(
        IncrementalMaintainer::Create(stack->db.schema_ptr(), plan, options)
            .value()));
    stack->registry = std::make_unique<SnapshotRegistry>();
    AttachToRegistry(stack->maintainer.get(), stack->registry.get());
    stack->applied = stack->db.size() / 2;
    FC_CHECK(stack->maintainer
                 ->ApplyRecords(std::span<const PathRecord>(
                     stack->db.records().data(), stack->applied))
                 .ok());
    stack->service = std::make_unique<QueryService>(stack->registry.get());
    stack->server = std::move(
        QueryServer::Start(stack->service.get()).value());
    return stack;
  }();
  return *s;
}

// The per-client request mix: point lookup on the all-* cell, a drill-down
// fanning out its children (the heavyweight response), and cube stats —
// every request a full wire round trip.
QueryRequest MixedRequest(uint64_t seq, size_t num_dims) {
  QueryRequest req;
  req.request_id = seq;
  switch (seq % 3) {
    case 0:
      req.type = RequestType::kPointLookup;
      req.values.assign(num_dims, "*");
      break;
    case 1:
      req.type = RequestType::kDrillDown;
      req.values.assign(num_dims, "*");
      req.dim = static_cast<uint32_t>((seq / 3) % num_dims);
      break;
    default:
      req.type = RequestType::kStats;
      break;
  }
  return req;
}

struct SweepRow {
  int clients = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t epoch_start = 0;
  uint64_t epoch_end = 0;
};

SweepRow RunSweep(int clients, size_t requests_per_client) {
  ServeStack& stack = Stack();
  SweepRow row;
  row.clients = clients;
  row.epoch_start = stack.registry->current_epoch();

  // Streaming load: trickle this row's slice of the remaining records in
  // micro-batches so clients see epoch churn for the whole measurement.
  std::atomic<bool> done{false};
  const size_t slice =
      std::min(stack.db.size() - stack.applied,
               std::max<size_t>(1, stack.db.size() / 16));
  std::thread streamer([&stack, &done, slice] {
    const size_t end = stack.applied + slice;
    const size_t batch = std::max<size_t>(1, slice / 8);
    while (stack.applied < end && !done.load(std::memory_order_relaxed)) {
      const size_t take = std::min(batch, end - stack.applied);
      FC_CHECK(stack.maintainer
                   ->ApplyRecords(std::span<const PathRecord>(
                       stack.db.records().data() + stack.applied, take))
                   .ok());
      stack.applied += take;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  const size_t num_dims = stack.db.schema().num_dimensions();
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::atomic<uint64_t> errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Result<ServeClient> client =
          ServeClient::Connect(stack.server->port());
      if (!client.ok()) {
        errors.fetch_add(requests_per_client);
        return;
      }
      std::vector<double>& lat = latencies[static_cast<size_t>(c)];
      lat.reserve(requests_per_client);
      for (size_t i = 0; i < requests_per_client; ++i) {
        const uint64_t seq =
            static_cast<uint64_t>(c) * requests_per_client + i;
        const auto t0 = std::chrono::steady_clock::now();
        Result<QueryResponse> resp =
            client->Call(MixedRequest(seq, num_dims));
        const auto t1 = std::chrono::steady_clock::now();
        if (!resp.ok() || resp->code != Status::Code::kOk) {
          errors.fetch_add(1);
          continue;
        }
        lat.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  row.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  done.store(true, std::memory_order_relaxed);
  streamer.join();

  std::vector<double> all;
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    row.p50_ms = all[all.size() / 2];
    row.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  row.requests = all.size();
  row.errors = errors.load();
  row.epoch_end = stack.registry->current_epoch();
  return row;
}

void RegisterAll() {
  const size_t requests_per_client = std::max<size_t>(100, ScaledN(1));
  const int client_counts[] = {1, 2, 4, 8};
  for (const int clients : client_counts) {
    const std::string bench_name =
        "serve/clients=" + std::to_string(clients);
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [clients, requests_per_client](benchmark::State& state) {
          for (auto _ : state) {
            const SweepRow row = RunSweep(clients, requests_per_client);
            state.SetIterationTime(row.seconds);
            const double qps =
                row.seconds > 0 ? row.requests / row.seconds : 0.0;
            state.counters["qps"] = qps;
            state.counters["p99_ms"] = row.p99_ms;
            Json().AddRow(
                {JsonField::Str("x",
                                std::to_string(clients) + " clients"),
                 JsonField::Int("clients",
                                static_cast<uint64_t>(row.clients)),
                 JsonField::Int("requests", row.requests),
                 JsonField::Int("errors", row.errors),
                 JsonField::Num("seconds", row.seconds),
                 JsonField::Num("qps", qps),
                 JsonField::Num("p50_ms", row.p50_ms),
                 JsonField::Num("p99_ms", row.p99_ms),
                 JsonField::Int("epoch_start", row.epoch_start),
                 JsonField::Int("epoch_end", row.epoch_end)});
          }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  flowcube::ConsumeMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  Json().Write();
  Stack().server->Shutdown();
  flowcube::DumpMetricsIfEnabled(stdout);
  return 0;
}
